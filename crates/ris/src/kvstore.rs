//! A key-value store with a watch facility.
//!
//! Stands in for the Computer Science Department's custom personnel
//! database ("lookup", §4.3): a typed get/put API plus *watch*
//! registrations — the native facility a translator uses to offer a
//! Notify Interface without SQL triggers. Watch reports are buffered in
//! the store and drained by the owner, mirroring how the relational
//! engine exposes trigger firings.

use crate::RisError;
use hcm_core::Value;
use std::collections::BTreeMap;

/// A change observed by a watch.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// The watch registration that matched.
    pub watch_id: u32,
    /// Key affected.
    pub key: String,
    /// Previous value (`None` when the key was absent).
    pub old: Option<Value>,
    /// New value (`None` when the key was deleted).
    pub new: Option<Value>,
}

#[derive(Debug, Clone)]
struct Watch {
    id: u32,
    prefix: String,
}

/// The key-value store.
#[derive(Debug, Default)]
pub struct KvStore {
    map: BTreeMap<String, Value>,
    watches: Vec<Watch>,
    pending: Vec<WatchEvent>,
    next_watch: u32,
}

impl KvStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get a value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// Put a value, returning the previous one.
    pub fn put(&mut self, key: &str, value: Value) -> Option<Value> {
        let old = self.map.insert(key.to_owned(), value.clone());
        self.notify(key, old.clone(), Some(value));
        old
    }

    /// Delete a key.
    pub fn delete(&mut self, key: &str) -> Result<Value, RisError> {
        match self.map.remove(key) {
            Some(old) => {
                self.notify(key, Some(old.clone()), None);
                Ok(old)
            }
            None => Err(RisError::NotFound(format!("key `{key}`"))),
        }
    }

    /// Compare-and-swap: set `key` to `new` only if its current value
    /// equals `expected`. Returns whether the swap happened.
    pub fn cas(&mut self, key: &str, expected: &Value, new: Value) -> bool {
        if self.map.get(key) == Some(expected) {
            self.put(key, new);
            true
        } else {
            false
        }
    }

    /// Register a watch on all keys with the given prefix; returns the
    /// watch id carried by matching [`WatchEvent`]s.
    pub fn watch_prefix(&mut self, prefix: &str) -> u32 {
        let id = self.next_watch;
        self.next_watch += 1;
        self.watches.push(Watch {
            id,
            prefix: prefix.to_owned(),
        });
        id
    }

    /// Remove a watch.
    pub fn unwatch(&mut self, id: u32) {
        self.watches.retain(|w| w.id != id);
    }

    /// Drain buffered watch events.
    pub fn take_events(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.pending)
    }

    /// All keys (sorted).
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn notify(&mut self, key: &str, old: Option<Value>, new: Option<Value>) {
        for w in &self.watches {
            if key.starts_with(&w.prefix) {
                self.pending.push(WatchEvent {
                    watch_id: w.id,
                    key: key.to_owned(),
                    old: old.clone(),
                    new: new.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        assert_eq!(kv.put("phone/ann", Value::from("555-0100")), None);
        assert_eq!(kv.get("phone/ann"), Some(&Value::from("555-0100")));
        assert_eq!(
            kv.put("phone/ann", Value::from("555-0200")),
            Some(Value::from("555-0100"))
        );
        assert_eq!(kv.delete("phone/ann").unwrap(), Value::from("555-0200"));
        assert!(kv.delete("phone/ann").is_err());
    }

    #[test]
    fn watches_match_prefix_and_drain() {
        let mut kv = KvStore::new();
        let w = kv.watch_prefix("phone/");
        kv.put("phone/ann", Value::from("1"));
        kv.put("office/ann", Value::from("b12"));
        kv.put("phone/ann", Value::from("2"));
        kv.delete("phone/ann").unwrap();
        let events = kv.take_events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.watch_id == w));
        assert_eq!(events[0].old, None);
        assert_eq!(events[1].old, Some(Value::from("1")));
        assert_eq!(events[2].new, None);
        assert!(kv.take_events().is_empty());
    }

    #[test]
    fn unwatch_stops_events() {
        let mut kv = KvStore::new();
        let w = kv.watch_prefix("");
        kv.unwatch(w);
        kv.put("k", Value::Int(1));
        assert!(kv.take_events().is_empty());
    }

    #[test]
    fn cas_semantics() {
        let mut kv = KvStore::new();
        kv.put("k", Value::Int(1));
        kv.watch_prefix("k");
        kv.take_events();
        assert!(kv.cas("k", &Value::Int(1), Value::Int(2)));
        assert!(!kv.cas("k", &Value::Int(1), Value::Int(3)));
        assert_eq!(kv.get("k"), Some(&Value::Int(2)));
        assert_eq!(kv.take_events().len(), 1); // only the successful swap
    }

    #[test]
    fn keys_sorted() {
        let mut kv = KvStore::new();
        kv.put("b", Value::Int(1));
        kv.put("a", Value::Int(2));
        assert_eq!(kv.keys(), vec!["a", "b"]);
        assert_eq!(kv.len(), 2);
    }
}
