//! A Unix-file-system-like store.
//!
//! The paper's toolkit "implemented CM-Translators for Unix files and
//! relational databases" (§4.3) and describes detecting Read Interface
//! failures through `read()` return codes (§5). This store models that
//! RIS profile: named files holding **plain text**, whole-file read and
//! replace, modification times — and *no* notification facility, so the
//! only way to observe changes is polling (mtime comparison or content
//! reads).
//!
//! Contents are strings; any typing is the translator's business.

use crate::RisError;
use hcm_core::SimTime;
use std::collections::BTreeMap;

/// One file's state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct File {
    contents: String,
    mtime: SimTime,
}

/// The file store.
#[derive(Debug, Default, Clone)]
pub struct FileStore {
    files: BTreeMap<String, File>,
}

impl FileStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a file's contents (the `read()` call; a missing file is the
    /// analogue of `ENOENT`).
    pub fn read(&self, path: &str) -> Result<&str, RisError> {
        self.files
            .get(path)
            .map(|f| f.contents.as_str())
            .ok_or_else(|| RisError::NotFound(format!("file `{path}`")))
    }

    /// Modification time of a file.
    pub fn mtime(&self, path: &str) -> Result<SimTime, RisError> {
        self.files
            .get(path)
            .map(|f| f.mtime)
            .ok_or_else(|| RisError::NotFound(format!("file `{path}`")))
    }

    /// Create or replace a file. `now` stamps the mtime (the store has
    /// no clock of its own; the caller — translator or workload — is in
    /// the simulation and does).
    pub fn write(&mut self, path: &str, contents: &str, now: SimTime) {
        self.files.insert(
            path.to_owned(),
            File {
                contents: contents.to_owned(),
                mtime: now,
            },
        );
    }

    /// Remove a file.
    pub fn remove(&mut self, path: &str) -> Result<(), RisError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| RisError::NotFound(format!("file `{path}`")))
    }

    /// Whether a file exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// List all paths (sorted).
    #[must_use]
    pub fn list(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// List paths under a directory prefix (sorted).
    #[must_use]
    pub fn list_prefix(&self, prefix: &str) -> Vec<&str> {
        self.files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .map(String::as_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut fs = FileStore::new();
        fs.write("/etc/phone", "555-0100", SimTime::from_secs(10));
        assert_eq!(fs.read("/etc/phone").unwrap(), "555-0100");
        assert_eq!(fs.mtime("/etc/phone").unwrap(), SimTime::from_secs(10));
        assert!(fs.exists("/etc/phone"));
    }

    #[test]
    fn overwrite_updates_mtime() {
        let mut fs = FileStore::new();
        fs.write("f", "a", SimTime::from_secs(1));
        fs.write("f", "b", SimTime::from_secs(5));
        assert_eq!(fs.read("f").unwrap(), "b");
        assert_eq!(fs.mtime("f").unwrap(), SimTime::from_secs(5));
    }

    #[test]
    fn missing_file_is_not_found() {
        let fs = FileStore::new();
        assert!(matches!(fs.read("nope"), Err(RisError::NotFound(_))));
        assert!(matches!(fs.mtime("nope"), Err(RisError::NotFound(_))));
        assert!(!fs.exists("nope"));
    }

    #[test]
    fn remove_and_list() {
        let mut fs = FileStore::new();
        fs.write("/a/1", "x", SimTime::ZERO);
        fs.write("/a/2", "y", SimTime::ZERO);
        fs.write("/b/1", "z", SimTime::ZERO);
        assert_eq!(fs.list(), vec!["/a/1", "/a/2", "/b/1"]);
        assert_eq!(fs.list_prefix("/a/"), vec!["/a/1", "/a/2"]);
        fs.remove("/a/1").unwrap();
        assert!(!fs.exists("/a/1"));
        assert!(fs.remove("/a/1").is_err());
    }
}
