//! Parser for the engine's SQL subset.
//!
//! Grammar (keywords case-insensitive, identifiers case-sensitive):
//!
//! ```text
//! CREATE TABLE t (c1, c2, …)
//! DROP TABLE t
//! INSERT INTO t VALUES (v1, v2, …)
//! INSERT INTO t (c1, c2) VALUES (v1, v2)
//! SELECT c1, c2 FROM t [WHERE c = v [AND …]] [ORDER BY c [DESC]] [LIMIT n]
//! SELECT * FROM t [WHERE …]
//! SELECT COUNT(*) | SUM(c) | MIN(c) | MAX(c) | AVG(c) FROM t [WHERE …]
//! UPDATE t SET c = v [, c = v …] [WHERE …]
//! DELETE FROM t [WHERE …]
//! ```
//!
//! Literals: integers, floats, `'single-quoted strings'`, `NULL`,
//! `TRUE`, `FALSE`. Predicates compare a column to a literal with
//! `=`, `!=`/`<>`, `<`, `<=`, `>`, `>=`, joined by `AND`.

use crate::RisError;
use hcm_core::Value;

/// Comparison operators usable in WHERE clauses and CHECK constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl SqlOp {
    /// Apply the comparison; incomparable pairs are simply unequal /
    /// false (SQL three-valued logic collapsed to false, which is what
    /// a predicate needs).
    #[must_use]
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            SqlOp::Eq => a == b,
            SqlOp::Ne => a != b,
            _ => match a.compare(b) {
                Some(ord) => match self {
                    SqlOp::Lt => ord.is_lt(),
                    SqlOp::Le => ord.is_le(),
                    SqlOp::Gt => ord.is_gt(),
                    SqlOp::Ge => ord.is_ge(),
                    SqlOp::Eq | SqlOp::Ne => unreachable!(),
                },
                None => false,
            },
        }
    }
}

/// One `column op literal` conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: SqlOp,
    /// Literal operand.
    pub value: Value,
}

/// An aggregate function in a SELECT head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

/// `ORDER BY` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// Sort column.
    pub column: String,
    /// Descending order when set.
    pub desc: bool,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO`.
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Values in declaration order.
        values: Vec<Value>,
    },
    /// `SELECT`.
    Select {
        /// Table name.
        table: String,
        /// Projected columns (`["*"]` for all).
        columns: Vec<String>,
        /// WHERE conjuncts (empty = all rows).
        predicate: Vec<Comparison>,
        /// Optional `ORDER BY`.
        order: Option<OrderBy>,
        /// Optional `LIMIT`.
        limit: Option<usize>,
    },
    /// `SELECT <agg>(…)`.
    SelectAggregate {
        /// Table name.
        table: String,
        /// The aggregate function.
        agg: Aggregate,
        /// Aggregated column (ignored for COUNT).
        column: Option<String>,
        /// WHERE conjuncts.
        predicate: Vec<Comparison>,
    },
    /// `UPDATE`.
    Update {
        /// Table name.
        table: String,
        /// `SET` assignments.
        assignments: Vec<(String, Value)>,
        /// WHERE conjuncts.
        predicate: Vec<Comparison>,
    },
    /// `DELETE`.
    Delete {
        /// Table name.
        table: String,
        /// WHERE conjuncts.
        predicate: Vec<Comparison>,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Ident(String),
    Lit(Value),
    LParen,
    RParen,
    Comma,
    Op(SqlOp),
    Star,
}

fn bad(msg: impl Into<String>) -> RisError {
    RisError::BadCommand(msg.into())
}

fn tokenize(src: &str) -> Result<Vec<T>, RisError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            ',' => {
                out.push(T::Comma);
                i += 1;
            }
            '*' => {
                out.push(T::Star);
                i += 1;
            }
            '=' => {
                out.push(T::Op(SqlOp::Eq));
                i += 1;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(T::Op(SqlOp::Ne));
                i += 2;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(T::Op(SqlOp::Le));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(T::Op(SqlOp::Ne));
                    i += 2;
                } else {
                    out.push(T::Op(SqlOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(T::Op(SqlOp::Ge));
                    i += 2;
                } else {
                    out.push(T::Op(SqlOp::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(bad("unterminated string literal"));
                }
                out.push(T::Lit(Value::Str(src[start..j].to_owned())));
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let v = if is_float {
                    Value::Float(text.parse().map_err(|e| bad(format!("bad float: {e}")))?)
                } else {
                    Value::Int(text.parse().map_err(|e| bad(format!("bad integer: {e}")))?)
                };
                out.push(T::Lit(v));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "NULL" => out.push(T::Lit(Value::Null)),
                    "TRUE" => out.push(T::Lit(Value::Bool(true))),
                    "FALSE" => out.push(T::Lit(Value::Bool(false))),
                    _ => out.push(T::Ident(word.to_owned())),
                }
            }
            other => return Err(bad(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<T>,
    pos: usize,
}

impl P {
    fn next(&mut self) -> Option<T> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&T> {
        self.toks.get(self.pos)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), RisError> {
        match self.next() {
            Some(T::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(bad(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(T::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, RisError> {
        match self.next() {
            Some(T::Ident(w)) => Ok(w),
            other => Err(bad(format!("expected identifier, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, RisError> {
        match self.next() {
            Some(T::Lit(v)) => Ok(v),
            other => Err(bad(format!("expected literal, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: &T) -> Result<(), RisError> {
        match self.next() {
            Some(x) if x == *t => Ok(()),
            other => Err(bad(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn end(&self) -> Result<(), RisError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(bad("trailing input after command"))
        }
    }

    fn where_clause(&mut self) -> Result<Vec<Comparison>, RisError> {
        if !self.is_keyword("WHERE") {
            return Ok(Vec::new());
        }
        self.pos += 1;
        let mut preds = Vec::new();
        loop {
            let column = self.ident()?;
            let op = match self.next() {
                Some(T::Op(op)) => op,
                other => return Err(bad(format!("expected comparison, found {other:?}"))),
            };
            let value = self.literal()?;
            preds.push(Comparison { column, op, value });
            if self.is_keyword("AND") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(preds)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, RisError> {
        self.expect(&T::LParen)?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            match self.next() {
                Some(T::Comma) => continue,
                Some(T::RParen) => break,
                other => return Err(bad(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(cols)
    }

    fn literal_list(&mut self) -> Result<Vec<Value>, RisError> {
        self.expect(&T::LParen)?;
        let mut vals = Vec::new();
        loop {
            vals.push(self.literal()?);
            match self.next() {
                Some(T::Comma) => continue,
                Some(T::RParen) => break,
                other => return Err(bad(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(vals)
    }
}

/// Parse one command.
pub fn parse_command(src: &str) -> Result<Command, RisError> {
    let mut p = P {
        toks: tokenize(src)?,
        pos: 0,
    };
    let head = p.ident()?;
    let cmd = match head.to_ascii_uppercase().as_str() {
        "CREATE" => {
            p.keyword("TABLE")?;
            let name = p.ident()?;
            let columns = p.ident_list()?;
            Command::CreateTable { name, columns }
        }
        "DROP" => {
            p.keyword("TABLE")?;
            let name = p.ident()?;
            Command::DropTable { name }
        }
        "INSERT" => {
            p.keyword("INTO")?;
            let table = p.ident()?;
            let columns = if matches!(p.peek(), Some(T::LParen)) {
                Some(p.ident_list()?)
            } else {
                None
            };
            p.keyword("VALUES")?;
            let values = p.literal_list()?;
            Command::Insert {
                table,
                columns,
                values,
            }
        }
        "SELECT" => {
            // Aggregate head? `IDENT (` with an aggregate name.
            let agg = match p.peek() {
                Some(T::Ident(w)) => match w.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(Aggregate::Count),
                    "SUM" => Some(Aggregate::Sum),
                    "MIN" => Some(Aggregate::Min),
                    "MAX" => Some(Aggregate::Max),
                    "AVG" => Some(Aggregate::Avg),
                    _ => None,
                },
                _ => None,
            };
            let agg = match agg {
                Some(a) if p.toks.get(p.pos + 1) == Some(&T::LParen) => {
                    p.pos += 2; // aggregate name + `(`
                    let column = if a == Aggregate::Count {
                        if matches!(p.peek(), Some(T::Star)) {
                            p.pos += 1;
                            None
                        } else {
                            Some(p.ident()?)
                        }
                    } else {
                        Some(p.ident()?)
                    };
                    p.expect(&T::RParen)?;
                    Some((a, column))
                }
                _ => None,
            };
            if let Some((agg, column)) = agg {
                p.keyword("FROM")?;
                let table = p.ident()?;
                let predicate = p.where_clause()?;
                Command::SelectAggregate {
                    table,
                    agg,
                    column,
                    predicate,
                }
            } else {
                let mut columns = Vec::new();
                if matches!(p.peek(), Some(T::Star)) {
                    p.pos += 1;
                    columns.push("*".to_owned());
                } else {
                    loop {
                        columns.push(p.ident()?);
                        if matches!(p.peek(), Some(T::Comma)) {
                            p.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                p.keyword("FROM")?;
                let table = p.ident()?;
                let predicate = p.where_clause()?;
                let order = if p.is_keyword("ORDER") {
                    p.pos += 1;
                    p.keyword("BY")?;
                    let column = p.ident()?;
                    let desc = if p.is_keyword("DESC") {
                        p.pos += 1;
                        true
                    } else {
                        if p.is_keyword("ASC") {
                            p.pos += 1;
                        }
                        false
                    };
                    Some(OrderBy { column, desc })
                } else {
                    None
                };
                let limit = if p.is_keyword("LIMIT") {
                    p.pos += 1;
                    match p.next() {
                        Some(T::Lit(Value::Int(n))) if n >= 0 => Some(n as usize),
                        other => return Err(bad(format!("expected LIMIT count, found {other:?}"))),
                    }
                } else {
                    None
                };
                Command::Select {
                    table,
                    columns,
                    predicate,
                    order,
                    limit,
                }
            }
        }
        "UPDATE" => {
            let table = p.ident()?;
            p.keyword("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = p.ident()?;
                match p.next() {
                    Some(T::Op(SqlOp::Eq)) => {}
                    other => return Err(bad(format!("expected `=`, found {other:?}"))),
                }
                let val = p.literal()?;
                assignments.push((col, val));
                if matches!(p.peek(), Some(T::Comma)) {
                    p.pos += 1;
                } else {
                    break;
                }
            }
            let predicate = p.where_clause()?;
            Command::Update {
                table,
                assignments,
                predicate,
            }
        }
        "DELETE" => {
            p.keyword("FROM")?;
            let table = p.ident()?;
            let predicate = p.where_clause()?;
            Command::Delete { table, predicate }
        }
        other => return Err(bad(format!("unknown command `{other}`"))),
    };
    p.end()?;
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create() {
        let c = parse_command("CREATE TABLE t (a, b)").unwrap();
        assert_eq!(
            c,
            Command::CreateTable {
                name: "t".into(),
                columns: vec!["a".into(), "b".into()]
            }
        );
    }

    #[test]
    fn parses_insert_variants() {
        let c = parse_command("INSERT INTO t VALUES (1, 'x', NULL)").unwrap();
        match c {
            Command::Insert {
                columns: None,
                values,
                ..
            } => {
                assert_eq!(values, vec![Value::Int(1), Value::from("x"), Value::Null]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let c = parse_command("insert into t (b, a) values (2.5, TRUE)").unwrap();
        match c {
            Command::Insert {
                columns: Some(cols),
                values,
                ..
            } => {
                assert_eq!(cols, vec!["b".to_string(), "a".to_string()]);
                assert_eq!(values, vec![Value::Float(2.5), Value::Bool(true)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_where() {
        let c = parse_command("SELECT salary FROM employees WHERE empid = 'e1' AND salary >= 0")
            .unwrap();
        match c {
            Command::Select {
                table,
                columns,
                predicate,
                ..
            } => {
                assert_eq!(table, "employees");
                assert_eq!(columns, vec!["salary".to_string()]);
                assert_eq!(predicate.len(), 2);
                assert_eq!(predicate[1].op, SqlOp::Ge);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_star() {
        let c = parse_command("SELECT * FROM t").unwrap();
        assert!(matches!(c, Command::Select { ref columns, .. } if columns == &["*".to_string()]));
    }

    #[test]
    fn parses_update_lowercase() {
        // The exact command template from the paper's CM-RID (§4.2.1).
        let c = parse_command("update employees set salary = 90000 where empid = 'e42'").unwrap();
        match c {
            Command::Update {
                table,
                assignments,
                predicate,
            } => {
                assert_eq!(table, "employees");
                assert_eq!(assignments, vec![("salary".to_string(), Value::Int(90000))]);
                assert_eq!(predicate[0].value, Value::from("e42"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_ne_spellings() {
        let c = parse_command("DELETE FROM t WHERE a != 1 AND b <> 2").unwrap();
        match c {
            Command::Delete { predicate, .. } => {
                assert_eq!(predicate[0].op, SqlOp::Ne);
                assert_eq!(predicate[1].op, SqlOp::Ne);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers() {
        let c = parse_command("INSERT INTO t VALUES (-5, -2.5)").unwrap();
        match c {
            Command::Insert { values, .. } => {
                assert_eq!(values, vec![Value::Int(-5), Value::Float(-2.5)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sql_op_apply() {
        assert!(SqlOp::Le.apply(&Value::Int(3), &Value::Int(3)));
        assert!(SqlOp::Ne.apply(&Value::Int(3), &Value::from("x")));
        assert!(!SqlOp::Lt.apply(&Value::from("x"), &Value::Int(3)));
    }

    #[test]
    fn errors() {
        assert!(parse_command("TRUNCATE TABLE t").is_err());
        assert!(parse_command("SELECT FROM t").is_err());
        assert!(parse_command("INSERT INTO t VALUES (1) trailing").is_err());
        assert!(parse_command("UPDATE t SET a > 1").is_err());
        assert!(parse_command("SELECT a FROM t WHERE a").is_err());
        assert!(parse_command("INSERT INTO t VALUES ('unterminated)").is_err());
        assert!(parse_command("SELECT a FROM t WHERE a = $b").is_err());
    }
}
