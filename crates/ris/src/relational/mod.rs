//! A miniature relational engine with a textual SQL-subset interface.
//!
//! This is the stand-in for the paper's Sybase/Oracle sources. What
//! matters for the reproduction is its *capability profile*:
//!
//! * the CM talks to it by sending **command strings** (the CM-RID for
//!   site `B` in §4.2.1 literally stores
//!   `update employees set salary = $b where empid = $n` as the write
//!   command template);
//! * it has a **production-rule/trigger facility**, so a translator can
//!   implement a Notify Interface by declaring triggers (§4.1: "a
//!   CM-Translator supporting a Notify Interface for a Sybase RIS may
//!   need to declare triggers on the underlying database");
//! * it enforces **local CHECK constraints**, the "local constraint
//!   managers" the Demarcation Protocol builds on (§6.1).

mod sql;
mod table;

pub use sql::{parse_command, Aggregate, Command, Comparison, OrderBy, SqlOp};
pub use table::{Row, Table};

use crate::RisError;
use hcm_core::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Which mutations a trigger observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerOp {
    /// Row inserted.
    Insert,
    /// Row updated.
    Update,
    /// Row deleted.
    Delete,
}

/// A trigger registration.
#[derive(Debug, Clone)]
struct Trigger {
    id: u32,
    table: String,
    ops: Vec<TriggerOp>,
}

/// A recorded trigger firing, drained by the owner (the CM-Translator)
/// after each command.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerFiring {
    /// The trigger that fired.
    pub trigger_id: u32,
    /// Affected table.
    pub table: String,
    /// Kind of mutation.
    pub op: TriggerOp,
    /// Row before the mutation (`None` for inserts).
    pub old_row: Option<Row>,
    /// Row after the mutation (`None` for deletes).
    pub new_row: Option<Row>,
}

/// A per-row CHECK constraint: `left op right` where each side is a
/// column or a literal. Enforced on insert and update; violating
/// commands are rejected atomically.
#[derive(Debug, Clone)]
pub struct Check {
    /// Table the check applies to.
    pub table: String,
    /// Left operand.
    pub left: CheckOperand,
    /// Comparison operator.
    pub op: SqlOp,
    /// Right operand.
    pub right: CheckOperand,
}

/// One side of a CHECK constraint.
#[derive(Debug, Clone)]
pub enum CheckOperand {
    /// A column of the row being checked.
    Col(String),
    /// A constant.
    Lit(Value),
}

/// Result of executing a command.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Rows returned by a SELECT (projected columns, then rows).
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Row>,
    },
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// DDL acknowledged.
    Ok,
}

impl QueryResult {
    /// The single scalar of a one-row, one-column result, if that is
    /// what this is.
    #[must_use]
    pub fn scalar(&self) -> Option<&Value> {
        match self {
            QueryResult::Rows { rows, .. } if rows.len() == 1 && rows[0].len() == 1 => {
                Some(&rows[0][0])
            }
            _ => None,
        }
    }
}

/// The database: named tables, triggers, CHECK constraints, and a
/// pending-firings buffer.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    triggers: Vec<Trigger>,
    checks: Vec<Check>,
    firings: Vec<TriggerFiring>,
    next_trigger: u32,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table programmatically (equivalent to `CREATE TABLE`).
    pub fn create_table(&mut self, name: &str, columns: &[&str]) -> Result<(), RisError> {
        if self.tables.contains_key(name) {
            return Err(RisError::BadCommand(format!(
                "table `{name}` already exists"
            )));
        }
        self.tables
            .insert(name.to_owned(), Table::new(name, columns));
        Ok(())
    }

    /// Declare a trigger on `table` for the given operations; returns
    /// the trigger id reported in firings.
    pub fn add_trigger(&mut self, table: &str, ops: &[TriggerOp]) -> Result<u32, RisError> {
        if !self.tables.contains_key(table) {
            return Err(RisError::NotFound(format!("table `{table}`")));
        }
        let id = self.next_trigger;
        self.next_trigger += 1;
        self.triggers.push(Trigger {
            id,
            table: table.to_owned(),
            ops: ops.to_vec(),
        });
        Ok(id)
    }

    /// Remove a trigger.
    pub fn drop_trigger(&mut self, id: u32) {
        self.triggers.retain(|t| t.id != id);
    }

    /// Install a CHECK constraint. Existing rows must already satisfy
    /// it.
    pub fn add_check(&mut self, check: Check) -> Result<(), RisError> {
        let table = self
            .tables
            .get(&check.table)
            .ok_or_else(|| RisError::NotFound(format!("table `{}`", check.table)))?;
        for row in table.rows() {
            if !eval_check(&check, table, row)? {
                return Err(RisError::ConstraintViolation(format!(
                    "existing row violates new check on `{}`",
                    check.table
                )));
            }
        }
        self.checks.push(check);
        Ok(())
    }

    /// Drain trigger firings accumulated since the last call.
    pub fn take_firings(&mut self) -> Vec<TriggerFiring> {
        std::mem::take(&mut self.firings)
    }

    /// Direct single-cell read helper used by tests and translators:
    /// value of `col` in the unique row where `key_col = key`.
    pub fn lookup(
        &self,
        table: &str,
        key_col: &str,
        key: &Value,
        col: &str,
    ) -> Result<Option<Value>, RisError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| RisError::NotFound(format!("table `{table}`")))?;
        let ki = t.col_index(key_col)?;
        let ci = t.col_index(col)?;
        Ok(t.rows()
            .iter()
            .find(|r| &r[ki] == key)
            .map(|r| r[ci].clone()))
    }

    /// Execute a textual command — the RISI. This is the *only* channel
    /// the CM-Translator uses at run time (besides draining trigger
    /// firings).
    pub fn execute(&mut self, command: &str) -> Result<QueryResult, RisError> {
        let cmd = parse_command(command)?;
        self.execute_parsed(&cmd)
    }

    /// Execute a pre-parsed command (saves re-parsing in hot loops).
    pub fn execute_parsed(&mut self, cmd: &Command) -> Result<QueryResult, RisError> {
        match cmd {
            Command::CreateTable { name, columns } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.create_table(name, &cols)?;
                Ok(QueryResult::Ok)
            }
            Command::Insert {
                table,
                columns,
                values,
            } => self.insert(table, columns.as_deref(), values.clone()),
            Command::DropTable { name } => self
                .tables
                .remove(name)
                .map(|_| QueryResult::Ok)
                .ok_or_else(|| RisError::NotFound(format!("table `{name}`"))),
            Command::Select {
                table,
                columns,
                predicate,
                order,
                limit,
            } => self.select(table, columns, predicate, order.as_ref(), *limit),
            Command::SelectAggregate {
                table,
                agg,
                column,
                predicate,
            } => self.select_aggregate(table, *agg, column.as_deref(), predicate),
            Command::Update {
                table,
                assignments,
                predicate,
            } => self.update(table, assignments, predicate),
            Command::Delete { table, predicate } => self.delete(table, predicate),
        }
    }

    fn table(&self, name: &str) -> Result<&Table, RisError> {
        self.tables
            .get(name)
            .ok_or_else(|| RisError::NotFound(format!("table `{name}`")))
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        values: Vec<Value>,
    ) -> Result<QueryResult, RisError> {
        let t = self.table(table)?;
        let row = match columns {
            None => {
                if values.len() != t.columns().len() {
                    return Err(RisError::BadCommand(format!(
                        "insert arity {} != table arity {}",
                        values.len(),
                        t.columns().len()
                    )));
                }
                values
            }
            Some(cols) => {
                if cols.len() != values.len() {
                    return Err(RisError::BadCommand("column/value count mismatch".into()));
                }
                let mut row = vec![Value::Null; t.columns().len()];
                for (c, v) in cols.iter().zip(values) {
                    row[t.col_index(c)?] = v;
                }
                row
            }
        };
        // CHECK constraints before mutation.
        let t = self.table(table)?;
        for check in self.checks.iter().filter(|c| c.table == table) {
            if !eval_check(check, t, &row)? {
                return Err(RisError::ConstraintViolation(format!(
                    "insert into `{table}` violates check"
                )));
            }
        }
        let t = self.tables.get_mut(table).expect("checked");
        t.push_row(row.clone());
        self.fire(table, TriggerOp::Insert, None, Some(row));
        Ok(QueryResult::Affected(1))
    }

    fn select(
        &self,
        table: &str,
        columns: &[String],
        predicate: &[Comparison],
        order: Option<&OrderBy>,
        limit: Option<usize>,
    ) -> Result<QueryResult, RisError> {
        let t = self.table(table)?;
        let proj: Vec<usize> = if columns.len() == 1 && columns[0] == "*" {
            (0..t.columns().len()).collect()
        } else {
            columns
                .iter()
                .map(|c| t.col_index(c))
                .collect::<Result<_, _>>()?
        };
        let pred_idx = compile_predicate(t, predicate)?;
        let mut matched: Vec<&Row> = t
            .rows()
            .iter()
            .filter(|row| matches_pred(row, &pred_idx))
            .collect();
        if let Some(ob) = order {
            let oi = t.col_index(&ob.column)?;
            matched.sort_by(|a, b| {
                let ord = a[oi].cmp(&b[oi]);
                if ob.desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(n) = limit {
            matched.truncate(n);
        }
        let rows = matched
            .into_iter()
            .map(|row| proj.iter().map(|&i| row[i].clone()).collect())
            .collect();
        let out_cols = proj.iter().map(|&i| t.columns()[i].clone()).collect();
        Ok(QueryResult::Rows {
            columns: out_cols,
            rows,
        })
    }

    fn select_aggregate(
        &self,
        table: &str,
        agg: Aggregate,
        column: Option<&str>,
        predicate: &[Comparison],
    ) -> Result<QueryResult, RisError> {
        let t = self.table(table)?;
        let pred_idx = compile_predicate(t, predicate)?;
        let matched: Vec<&Row> = t
            .rows()
            .iter()
            .filter(|row| matches_pred(row, &pred_idx))
            .collect();
        let value = match agg {
            Aggregate::Count => Value::Int(matched.len() as i64),
            _ => {
                let col = column
                    .ok_or_else(|| RisError::BadCommand(format!("{agg:?} needs a column")))?;
                let ci = t.col_index(col)?;
                let nums: Vec<&Value> = matched
                    .iter()
                    .map(|r| &r[ci])
                    .filter(|v| v.exists())
                    .collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    match agg {
                        Aggregate::Sum => nums
                            .iter()
                            .try_fold(Value::Int(0), |acc, v| acc.add(v))
                            .ok_or_else(|| {
                                RisError::BadCommand(format!("SUM over non-numeric `{col}`"))
                            })?,
                        Aggregate::Avg => {
                            let sum = nums
                                .iter()
                                .try_fold(Value::Int(0), |acc, v| acc.add(v))
                                .and_then(|s| s.as_f64())
                                .ok_or_else(|| {
                                    RisError::BadCommand(format!("AVG over non-numeric `{col}`"))
                                })?;
                            Value::Float(sum / nums.len() as f64)
                        }
                        Aggregate::Min => (*nums.iter().min().expect("non-empty")).clone(),
                        Aggregate::Max => (*nums.iter().max().expect("non-empty")).clone(),
                        Aggregate::Count => unreachable!(),
                    }
                }
            }
        };
        Ok(QueryResult::Rows {
            columns: vec![format!("{agg:?}").to_lowercase()],
            rows: vec![vec![value]],
        })
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, Value)],
        predicate: &[Comparison],
    ) -> Result<QueryResult, RisError> {
        let t = self.table(table)?;
        let assign_idx: Vec<(usize, Value)> = assignments
            .iter()
            .map(|(c, v)| Ok((t.col_index(c)?, v.clone())))
            .collect::<Result<_, RisError>>()?;
        let pred_idx = compile_predicate(t, predicate)?;
        let checks: Vec<Check> = self
            .checks
            .iter()
            .filter(|c| c.table == table)
            .cloned()
            .collect();

        // Two-phase: compute all updated rows, validate checks, then
        // apply — a violating command changes nothing.
        let t_ref = self.table(table)?;
        let mut planned: Vec<(usize, Row, Row)> = Vec::new();
        for (i, row) in t_ref.rows().iter().enumerate() {
            if matches_pred(row, &pred_idx) {
                let mut new_row = row.clone();
                for (ci, v) in &assign_idx {
                    new_row[*ci] = v.clone();
                }
                for check in &checks {
                    if !eval_check(check, t_ref, &new_row)? {
                        return Err(RisError::ConstraintViolation(format!(
                            "update of `{table}` violates check"
                        )));
                    }
                }
                planned.push((i, row.clone(), new_row));
            }
        }
        let n = planned.len();
        let t_mut = self.tables.get_mut(table).expect("checked");
        for (i, _, new_row) in &planned {
            t_mut.replace_row(*i, new_row.clone());
        }
        for (_, old_row, new_row) in planned {
            self.fire(table, TriggerOp::Update, Some(old_row), Some(new_row));
        }
        Ok(QueryResult::Affected(n))
    }

    fn delete(&mut self, table: &str, predicate: &[Comparison]) -> Result<QueryResult, RisError> {
        let t = self.table(table)?;
        let pred_idx = compile_predicate(t, predicate)?;
        let t_mut = self.tables.get_mut(table).expect("checked");
        let removed = t_mut.remove_rows(|row| matches_pred(row, &pred_idx));
        let n = removed.len();
        for row in removed {
            self.fire(table, TriggerOp::Delete, Some(row), None);
        }
        Ok(QueryResult::Affected(n))
    }

    fn fire(&mut self, table: &str, op: TriggerOp, old_row: Option<Row>, new_row: Option<Row>) {
        for tr in &self.triggers {
            if tr.table == table && tr.ops.contains(&op) {
                self.firings.push(TriggerFiring {
                    trigger_id: tr.id,
                    table: table.to_owned(),
                    op,
                    old_row: old_row.clone(),
                    new_row: new_row.clone(),
                });
            }
        }
    }

    /// Names of all tables (deterministic order).
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Borrow a table for inspection.
    pub fn get_table(&self, name: &str) -> Result<&Table, RisError> {
        self.table(name)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, t) in &self.tables {
            writeln!(
                f,
                "{name}({}) — {} rows",
                t.columns().join(", "),
                t.rows().len()
            )?;
        }
        Ok(())
    }
}

fn compile_predicate(
    t: &Table,
    predicate: &[Comparison],
) -> Result<Vec<(usize, SqlOp, Value)>, RisError> {
    predicate
        .iter()
        .map(|c| Ok((t.col_index(&c.column)?, c.op, c.value.clone())))
        .collect()
}

fn matches_pred(row: &Row, pred: &[(usize, SqlOp, Value)]) -> bool {
    pred.iter().all(|(i, op, v)| op.apply(&row[*i], v))
}

fn eval_check(check: &Check, t: &Table, row: &Row) -> Result<bool, RisError> {
    let side = |operand: &CheckOperand| -> Result<Value, RisError> {
        match operand {
            CheckOperand::Lit(v) => Ok(v.clone()),
            CheckOperand::Col(c) => Ok(row[t.col_index(c)?].clone()),
        }
    };
    let l = side(&check.left)?;
    let r = side(&check.right)?;
    Ok(check.op.apply(&l, &r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salary_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE employees (empid, name, salary)")
            .unwrap();
        db.execute("INSERT INTO employees VALUES ('e1', 'ann', 90000)")
            .unwrap();
        db.execute("INSERT INTO employees VALUES ('e2', 'bob', 80000)")
            .unwrap();
        db
    }

    #[test]
    fn insert_select_update_delete() {
        let mut db = salary_db();
        let r = db
            .execute("SELECT salary FROM employees WHERE empid = 'e1'")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(90000)));

        let r = db
            .execute("UPDATE employees SET salary = 95000 WHERE empid = 'e1'")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(1));
        let r = db
            .execute("SELECT salary FROM employees WHERE empid = 'e1'")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(95000)));

        let r = db
            .execute("DELETE FROM employees WHERE empid = 'e2'")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(1));
        let r = db.execute("SELECT * FROM employees").unwrap();
        match r {
            QueryResult::Rows { rows, columns } => {
                assert_eq!(rows.len(), 1);
                assert_eq!(columns, vec!["empid", "name", "salary"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_write_command_shape() {
        // Exactly the §4.2.1 command, post parameter substitution.
        let mut db = salary_db();
        db.execute("update employees set salary = 70000 where empid = 'e2'")
            .unwrap();
        assert_eq!(
            db.lookup("employees", "empid", &Value::from("e2"), "salary")
                .unwrap(),
            Some(Value::Int(70000))
        );
    }

    #[test]
    fn triggers_fire_on_update_with_old_and_new() {
        let mut db = salary_db();
        let tid = db.add_trigger("employees", &[TriggerOp::Update]).unwrap();
        db.execute("UPDATE employees SET salary = 91000 WHERE empid = 'e1'")
            .unwrap();
        let firings = db.take_firings();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].trigger_id, tid);
        assert_eq!(firings[0].op, TriggerOp::Update);
        assert_eq!(firings[0].old_row.as_ref().unwrap()[2], Value::Int(90000));
        assert_eq!(firings[0].new_row.as_ref().unwrap()[2], Value::Int(91000));
        // Drained.
        assert!(db.take_firings().is_empty());
    }

    #[test]
    fn triggers_filter_by_op_and_table() {
        let mut db = salary_db();
        db.create_table("other", &["a"]).unwrap();
        db.add_trigger("employees", &[TriggerOp::Delete]).unwrap();
        db.execute("UPDATE employees SET salary = 1 WHERE empid = 'e1'")
            .unwrap();
        db.execute("INSERT INTO other VALUES (1)").unwrap();
        assert!(db.take_firings().is_empty());
        db.execute("DELETE FROM employees WHERE empid = 'e1'")
            .unwrap();
        assert_eq!(db.take_firings().len(), 1);
    }

    #[test]
    fn drop_trigger_stops_firings() {
        let mut db = salary_db();
        let tid = db.add_trigger("employees", &[TriggerOp::Update]).unwrap();
        db.drop_trigger(tid);
        db.execute("UPDATE employees SET salary = 1 WHERE empid = 'e1'")
            .unwrap();
        assert!(db.take_firings().is_empty());
    }

    #[test]
    fn check_constraint_rejects_violating_update_atomically() {
        // The demarcation local constraint: value <= lim, per row.
        let mut db = Database::new();
        db.create_table("demarc", &["name", "value", "lim"])
            .unwrap();
        db.execute("INSERT INTO demarc VALUES ('X', 10, 100)")
            .unwrap();
        db.add_check(Check {
            table: "demarc".into(),
            left: CheckOperand::Col("value".into()),
            op: SqlOp::Le,
            right: CheckOperand::Col("lim".into()),
        })
        .unwrap();
        // Within limit: fine.
        db.execute("UPDATE demarc SET value = 100 WHERE name = 'X'")
            .unwrap();
        // Beyond limit: rejected, nothing changed.
        let err = db
            .execute("UPDATE demarc SET value = 101 WHERE name = 'X'")
            .unwrap_err();
        assert!(matches!(err, RisError::ConstraintViolation(_)));
        assert_eq!(
            db.lookup("demarc", "name", &Value::from("X"), "value")
                .unwrap(),
            Some(Value::Int(100))
        );
        // Raising the limit then writing works.
        db.execute("UPDATE demarc SET lim = 200 WHERE name = 'X'")
            .unwrap();
        db.execute("UPDATE demarc SET value = 150 WHERE name = 'X'")
            .unwrap();
    }

    #[test]
    fn check_rejects_violating_insert() {
        let mut db = Database::new();
        db.create_table("t", &["v"]).unwrap();
        db.add_check(Check {
            table: "t".into(),
            left: CheckOperand::Col("v".into()),
            op: SqlOp::Ge,
            right: CheckOperand::Lit(Value::Int(0)),
        })
        .unwrap();
        assert!(db.execute("INSERT INTO t VALUES (-1)").is_err());
        db.execute("INSERT INTO t VALUES (5)").unwrap();
    }

    #[test]
    fn add_check_validates_existing_rows() {
        let mut db = Database::new();
        db.create_table("t", &["v"]).unwrap();
        db.execute("INSERT INTO t VALUES (-1)").unwrap();
        let err = db
            .add_check(Check {
                table: "t".into(),
                left: CheckOperand::Col("v".into()),
                op: SqlOp::Ge,
                right: CheckOperand::Lit(Value::Int(0)),
            })
            .unwrap_err();
        assert!(matches!(err, RisError::ConstraintViolation(_)));
    }

    #[test]
    fn insert_with_explicit_columns_fills_nulls() {
        let mut db = Database::new();
        db.create_table("t", &["a", "b", "c"]).unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (3, 1)").unwrap();
        let r = db.execute("SELECT a, b, c FROM t").unwrap();
        match r {
            QueryResult::Rows { rows, .. } => {
                assert_eq!(rows[0], vec![Value::Int(1), Value::Null, Value::Int(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        let mut db = salary_db();
        assert!(matches!(
            db.execute("SELECT x FROM nope"),
            Err(RisError::NotFound(_))
        ));
        assert!(matches!(
            db.execute("SELECT nosuchcol FROM employees"),
            Err(RisError::BadCommand(_))
        ));
        assert!(db.execute("CREATE TABLE employees (a)").is_err());
        assert!(db.execute("INSERT INTO employees VALUES (1)").is_err());
        assert!(db.add_trigger("nope", &[TriggerOp::Insert]).is_err());
    }

    #[test]
    fn multi_row_update_counts_and_fires_per_row() {
        let mut db = salary_db();
        db.add_trigger("employees", &[TriggerOp::Update]).unwrap();
        let r = db.execute("UPDATE employees SET salary = 0").unwrap();
        assert_eq!(r, QueryResult::Affected(2));
        assert_eq!(db.take_firings().len(), 2);
    }

    #[test]
    fn display_summarizes() {
        let db = salary_db();
        let s = db.to_string();
        assert!(s.contains("employees(empid, name, salary) — 2 rows"));
        assert_eq!(db.table_names(), vec!["employees"]);
        assert!(db.get_table("employees").is_ok());
    }
}

#[cfg(test)]
mod sql_extension_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("accounts", &["acct", "bal"]).unwrap();
        for (a, v) in [("a1", 100), ("a2", 250), ("a3", 50), ("a4", 250)] {
            db.execute(&format!("INSERT INTO accounts VALUES ('{a}', {v})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn count_sum_min_max_avg() {
        let mut d = db();
        assert_eq!(
            d.execute("SELECT COUNT(*) FROM accounts").unwrap().scalar(),
            Some(&Value::Int(4))
        );
        assert_eq!(
            d.execute("SELECT SUM(bal) FROM accounts").unwrap().scalar(),
            Some(&Value::Int(650))
        );
        assert_eq!(
            d.execute("SELECT MIN(bal) FROM accounts").unwrap().scalar(),
            Some(&Value::Int(50))
        );
        assert_eq!(
            d.execute("SELECT MAX(bal) FROM accounts").unwrap().scalar(),
            Some(&Value::Int(250))
        );
        assert_eq!(
            d.execute("SELECT AVG(bal) FROM accounts").unwrap().scalar(),
            Some(&Value::Float(162.5))
        );
    }

    #[test]
    fn aggregates_respect_where() {
        let mut d = db();
        assert_eq!(
            d.execute("SELECT COUNT(*) FROM accounts WHERE bal >= 100")
                .unwrap()
                .scalar(),
            Some(&Value::Int(3))
        );
        assert_eq!(
            d.execute("SELECT SUM(bal) FROM accounts WHERE bal < 100")
                .unwrap()
                .scalar(),
            Some(&Value::Int(50))
        );
        // Empty match: SUM/MIN/MAX yield NULL, COUNT yields 0.
        assert_eq!(
            d.execute("SELECT SUM(bal) FROM accounts WHERE bal > 9999")
                .unwrap()
                .scalar(),
            Some(&Value::Null)
        );
        assert_eq!(
            d.execute("SELECT COUNT(*) FROM accounts WHERE bal > 9999")
                .unwrap()
                .scalar(),
            Some(&Value::Int(0))
        );
    }

    #[test]
    fn order_by_and_limit() {
        let mut d = db();
        let r = d
            .execute("SELECT acct FROM accounts ORDER BY bal DESC LIMIT 2")
            .unwrap();
        match r {
            QueryResult::Rows { rows, .. } => {
                // a2 and a4 tie at 250; deterministic by stable sort on
                // insertion order.
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Value::from("a2"));
                assert_eq!(rows[1][0], Value::from("a4"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = d
            .execute("SELECT acct FROM accounts ORDER BY bal ASC LIMIT 1")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::from("a3")));
    }

    #[test]
    fn drop_table() {
        let mut d = db();
        d.execute("DROP TABLE accounts").unwrap();
        assert!(d.execute("SELECT * FROM accounts").is_err());
        assert!(d.execute("DROP TABLE accounts").is_err());
    }

    #[test]
    fn aggregate_errors() {
        let mut d = db();
        assert!(d.execute("SELECT SUM(nosuch) FROM accounts").is_err());
        assert!(
            d.execute("SELECT SUM(acct) FROM accounts").is_err(),
            "non-numeric"
        );
        assert!(d.execute("SELECT LIMIT FROM accounts").is_err());
    }

    #[test]
    fn count_distinct_column_form() {
        // COUNT(col) counts matching rows (no DISTINCT semantics).
        let mut d = db();
        assert_eq!(
            d.execute("SELECT COUNT(bal) FROM accounts")
                .unwrap()
                .scalar(),
            Some(&Value::Int(4))
        );
    }
}
