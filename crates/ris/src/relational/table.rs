//! Tables and rows.

use crate::RisError;
use hcm_core::Value;

/// A row: one value per column, in column order.
pub type Row = Vec<Value>;

/// A named table with untyped columns (values carry their own types, as
/// in the loosely typed legacy systems the paper targets).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// A new empty table.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Table {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names in order.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column.
    pub fn col_index(&self, col: &str) -> Result<usize, RisError> {
        self.columns
            .iter()
            .position(|c| c == col)
            .ok_or_else(|| RisError::BadCommand(format!("no column `{col}` in `{}`", self.name)))
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Append a row (arity already validated by the caller).
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Replace row `i`.
    pub fn replace_row(&mut self, i: usize, row: Row) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows[i] = row;
    }

    /// Remove rows matching the predicate, returning them in original
    /// order.
    pub fn remove_rows(&mut self, mut pred: impl FnMut(&Row) -> bool) -> Vec<Row> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.rows.len());
        for row in self.rows.drain(..) {
            if pred(&row) {
                removed.push(row);
            } else {
                kept.push(row);
            }
        }
        self.rows = kept;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut t = Table::new("t", &["a", "b"]);
        assert_eq!(t.name(), "t");
        assert_eq!(t.col_index("b").unwrap(), 1);
        assert!(t.col_index("zz").is_err());
        t.push_row(vec![Value::Int(1), Value::Int(2)]);
        t.push_row(vec![Value::Int(3), Value::Int(4)]);
        t.replace_row(0, vec![Value::Int(9), Value::Int(2)]);
        assert_eq!(t.rows()[0][0], Value::Int(9));
        let removed = t.remove_rows(|r| r[0] == Value::Int(3));
        assert_eq!(removed.len(), 1);
        assert_eq!(t.rows().len(), 1);
    }
}
