//! An electronic-mail system.
//!
//! The paper's RIS list includes "electronic mail systems" (§1, §4.1).
//! Mail has the *inverse* capability profile of the whois directory:
//! the CM can **send** (append a message) but never read back, update
//! or delete — a write-only sink. Its constraint-management role is
//! notification: §6.2's repair strategy deletes dangling records
//! "perhaps notifying the database owner of the deleted records".

use crate::RisError;
use hcm_core::SimTime;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mail {
    /// Recipient mailbox.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// Delivery time.
    pub at: SimTime,
}

/// The mail system: append-only mailboxes.
#[derive(Debug, Default, Clone)]
pub struct MailSystem {
    messages: Vec<Mail>,
}

impl MailSystem {
    /// An empty system.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Send a message (the only mutating operation).
    pub fn send(&mut self, to: &str, subject: &str, body: &str, now: SimTime) {
        self.messages.push(Mail {
            to: to.to_owned(),
            subject: subject.to_owned(),
            body: body.to_owned(),
            at: now,
        });
    }

    /// A recipient's inbox, oldest first. (Used by the *owner* of the
    /// mailbox — i.e. by tests and applications, not by the CM, which
    /// has no read access.)
    #[must_use]
    pub fn inbox(&self, to: &str) -> Vec<&Mail> {
        self.messages.iter().filter(|m| m.to == to).collect()
    }

    /// Total messages delivered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no mail has been sent.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Mail cannot be recalled — the deletion API exists only to return
    /// the error a translator would see.
    pub fn recall(&mut self, _to: &str) -> Result<(), RisError> {
        Err(RisError::Unsupported("mail cannot be recalled".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_inbox() {
        let mut m = MailSystem::new();
        assert!(m.is_empty());
        m.send("ann", "hello", "body1", SimTime::from_secs(1));
        m.send("bob", "hi", "body2", SimTime::from_secs(2));
        m.send("ann", "again", "body3", SimTime::from_secs(3));
        assert_eq!(m.len(), 3);
        let ann = m.inbox("ann");
        assert_eq!(ann.len(), 2);
        assert_eq!(ann[0].subject, "hello");
        assert_eq!(ann[1].at, SimTime::from_secs(3));
        assert!(m.inbox("carol").is_empty());
    }

    #[test]
    fn recall_is_unsupported() {
        let mut m = MailSystem::new();
        assert!(matches!(m.recall("ann"), Err(RisError::Unsupported(_))));
    }
}
