//! A bibliographic information system.
//!
//! Models the bibliographic database of the paper's Stanford scenario
//! (§4.3): an **append-only** collection of publication records that
//! outside software (the CM included) may only *query* — used there in
//! a referential-integrity constraint ("every paper authored by a
//! Stanford database researcher as reported by the bibliographic
//! database must also be mentioned in the Sybase database").
//!
//! There is no change feed and no deletion; translators implement
//! notify-like behaviour by periodically diffing query results (the
//! monotone key space makes "new since key k" queries cheap).

use crate::RisError;

/// One publication record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiblioRecord {
    /// Monotonically increasing record key, assigned by the store.
    pub key: u64,
    /// Author name.
    pub author: String,
    /// Title.
    pub title: String,
    /// Publication year.
    pub year: u32,
}

/// The bibliographic store.
#[derive(Debug, Default, Clone)]
pub struct BiblioDb {
    records: Vec<BiblioRecord>,
}

impl BiblioDb {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record — the *librarian's* operation, spontaneous from
    /// the CM's point of view. Returns the assigned key.
    pub fn append(&mut self, author: &str, title: &str, year: u32) -> u64 {
        let key = self.records.len() as u64;
        self.records.push(BiblioRecord {
            key,
            author: author.to_owned(),
            title: title.to_owned(),
            year,
        });
        key
    }

    /// Query by author.
    #[must_use]
    pub fn by_author(&self, author: &str) -> Vec<&BiblioRecord> {
        self.records.iter().filter(|r| r.author == author).collect()
    }

    /// Fetch a record by key.
    pub fn get(&self, key: u64) -> Result<&BiblioRecord, RisError> {
        self.records
            .get(key as usize)
            .ok_or_else(|| RisError::NotFound(format!("record {key}")))
    }

    /// Records with keys strictly greater than `after` — the polling
    /// primitive translators build on.
    #[must_use]
    pub fn since(&self, after: Option<u64>) -> &[BiblioRecord] {
        let start = after.map_or(0, |k| (k + 1) as usize);
        self.records.get(start..).unwrap_or(&[])
    }

    /// Total number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotone_keys() {
        let mut db = BiblioDb::new();
        assert!(db.is_empty());
        let k1 = db.append("widom", "Active DB", 1994);
        let k2 = db.append("widom", "Constraints", 1996);
        assert!(k1 < k2);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(k1).unwrap().title, "Active DB");
        assert!(db.get(99).is_err());
    }

    #[test]
    fn query_by_author() {
        let mut db = BiblioDb::new();
        db.append("widom", "A", 1994);
        db.append("garcia", "B", 1995);
        db.append("widom", "C", 1996);
        let hits = db.by_author("widom");
        assert_eq!(hits.len(), 2);
        assert!(db.by_author("nobody").is_empty());
    }

    #[test]
    fn since_supports_incremental_polls() {
        let mut db = BiblioDb::new();
        let a = db.append("x", "A", 1990);
        assert_eq!(db.since(None).len(), 1);
        assert!(db.since(Some(a)).is_empty());
        let b = db.append("x", "B", 1991);
        let fresh = db.since(Some(a));
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].key, b);
        assert!(db.since(Some(999)).is_empty());
    }
}
