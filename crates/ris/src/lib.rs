//! # hcm-ris — heterogeneous Raw Information Sources
//!
//! The paper's toolkit sits on top of "Raw Information Sources (RIS),
//! which could be relational or object-oriented database systems, file
//! systems, bibliographic information systems, electronic mail systems,
//! network news systems, and so on", each with "its own particular
//! interface, which we call RISI" (§4.1).
//!
//! This crate provides five stores whose **native APIs are deliberately
//! incompatible**, so that the CM-Translator layer in `hcm-toolkit` is
//! exercised for real rather than over a common trait:
//!
//! | store | native capability profile |
//! |---|---|
//! | [`relational::Database`] | textual SQL-subset commands, per-row CHECK constraints (a *local constraint manager*), update **triggers** |
//! | [`filestore::FileStore`] | whole-file read/replace of strings, mtimes; no triggers — must be **polled** |
//! | [`kvstore::KvStore`] | typed get/put/delete, **watch** registrations reporting changes |
//! | [`biblio::BiblioDb`] | append-only records, query by author; **read-only** to outsiders |
//! | [`whois::WhoisDir`] | name → field lookup and full dumps; **read-only**, no change feed |
//! | [`email::MailSystem`] | append-only mailboxes; **write-only** to the CM (notification sink) |
//!
//! The stores know nothing about events, rules, sites or the CM — that
//! is exactly the point: database autonomy (§4.3) means the toolkit
//! adapts to them, not the reverse.

#![warn(missing_docs)]

pub mod biblio;
pub mod email;
pub mod filestore;
pub mod kvstore;
pub mod relational;
pub mod whois;

/// Errors surfaced by the native store interfaces. Each store reports
/// failures in its own vocabulary; translators map them onto the CM's
/// metric/logical failure classification (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RisError {
    /// Malformed command (SQL syntax error, bad key, …).
    BadCommand(String),
    /// Referenced object does not exist.
    NotFound(String),
    /// A local integrity constraint rejected the operation — the
    /// relational engine's CHECK facility.
    ConstraintViolation(String),
    /// The store does not support the attempted operation (e.g. writing
    /// to the whois directory).
    Unsupported(String),
}

impl std::fmt::Display for RisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RisError::BadCommand(m) => write!(f, "bad command: {m}"),
            RisError::NotFound(m) => write!(f, "not found: {m}"),
            RisError::ConstraintViolation(m) => write!(f, "constraint violation: {m}"),
            RisError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for RisError {}
