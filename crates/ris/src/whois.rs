//! A "whois"-style directory service.
//!
//! Models the Stanford "whois" database (§4.3): a name → fields
//! directory that the CM can only **look up** or **dump**. Entries are
//! maintained by an administrator (spontaneous from the CM's view);
//! there is no write access, no triggers, no mtimes — the weakest
//! interface profile in the suite, forcing a Periodic-Notify-by-polling
//! translator.

use crate::RisError;
use std::collections::BTreeMap;

/// A directory entry's fields (`phone`, `email`, `office`, …).
pub type Fields = BTreeMap<String, String>;

/// The directory.
#[derive(Debug, Default, Clone)]
pub struct WhoisDir {
    entries: BTreeMap<String, Fields>,
}

impl WhoisDir {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Administrator operation: set a field of a person's entry,
    /// creating the entry if needed.
    pub fn admin_set(&mut self, name: &str, field: &str, value: &str) {
        self.entries
            .entry(name.to_owned())
            .or_default()
            .insert(field.to_owned(), value.to_owned());
    }

    /// Administrator operation: remove an entry entirely.
    pub fn admin_remove(&mut self, name: &str) -> Result<(), RisError> {
        self.entries
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RisError::NotFound(format!("entry `{name}`")))
    }

    /// Public lookup of one person's entry.
    pub fn lookup(&self, name: &str) -> Result<&Fields, RisError> {
        self.entries
            .get(name)
            .ok_or_else(|| RisError::NotFound(format!("entry `{name}`")))
    }

    /// Public lookup of one field.
    pub fn lookup_field(&self, name: &str, field: &str) -> Result<&str, RisError> {
        self.lookup(name)?
            .get(field)
            .map(String::as_str)
            .ok_or_else(|| RisError::NotFound(format!("field `{field}` of `{name}`")))
    }

    /// Public dump of the whole directory (the only way to observe
    /// changes — translators diff successive dumps).
    #[must_use]
    pub fn dump(&self) -> Vec<(&str, &Fields)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v)).collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_set_and_lookup() {
        let mut d = WhoisDir::new();
        d.admin_set("ann", "phone", "555-0100");
        d.admin_set("ann", "office", "Gates 4B");
        assert_eq!(d.lookup_field("ann", "phone").unwrap(), "555-0100");
        assert_eq!(d.lookup("ann").unwrap().len(), 2);
        assert!(d.lookup("bob").is_err());
        assert!(d.lookup_field("ann", "fax").is_err());
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let mut d = WhoisDir::new();
        d.admin_set("bob", "phone", "2");
        d.admin_set("ann", "phone", "1");
        let dump = d.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].0, "ann");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn admin_remove() {
        let mut d = WhoisDir::new();
        d.admin_set("ann", "phone", "1");
        d.admin_remove("ann").unwrap();
        assert!(d.is_empty());
        assert!(d.admin_remove("ann").is_err());
    }

    #[test]
    fn field_overwrite() {
        let mut d = WhoisDir::new();
        d.admin_set("ann", "phone", "1");
        d.admin_set("ann", "phone", "2");
        assert_eq!(d.lookup_field("ann", "phone").unwrap(), "2");
    }
}
