//! # hcm-bench — the experiment harness
//!
//! One Criterion bench target per experiment of `EXPERIMENTS.md`. Each
//! target does two things:
//!
//! 1. prints the experiment's **series table** (the reproduction of the
//!    paper's qualitative claims as numbers — miss rates, message
//!    counts, latencies, detection times) once at startup;
//! 2. benchmarks the underlying machinery with Criterion (simulation
//!    throughput, rule-engine and checker costs).
//!
//! Run everything with `cargo bench --workspace`; the tables land on
//! stderr and in `EXPERIMENTS.md`'s measured columns.

/// Common scenario builders shared by the bench targets.
pub mod scenarios {
    use hcm_core::{SimDuration, SimTime};
    use hcm_toolkit::backends::RawStore;
    use hcm_toolkit::workload::PoissonWriter;
    use hcm_toolkit::{Scenario, ScenarioBuilder};

    /// CM-RID for the notify-source salary site.
    pub const RID_SRC: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

    /// CM-RID for the writable destination salary site.
    pub const RID_DST: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

    /// The §4.2 propagation strategy.
    pub const PROPAGATE: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

    /// Fresh employees database with `n` rows.
    #[must_use]
    pub fn employees(n: usize) -> hcm_ris::relational::Database {
        let mut db = hcm_ris::relational::Database::new();
        db.create_table("employees", &["empid", "salary"]).unwrap();
        for i in 0..n {
            db.execute(&format!("INSERT INTO employees VALUES ('e{i}', {})", 1000 + i))
                .unwrap();
        }
        db
    }

    /// The salary scenario with a Poisson workload over `employees`
    /// employees, mean update gap `gap`, running until `until`.
    #[must_use]
    pub fn salary_scenario(
        seed: u64,
        employees_n: usize,
        gap: SimDuration,
        until: SimTime,
    ) -> Scenario {
        let mut sc = ScenarioBuilder::new(seed)
            .site("A", RawStore::Relational(employees(employees_n)), RID_SRC)
            .unwrap()
            .site("B", RawStore::Relational(employees(employees_n)), RID_DST)
            .unwrap()
            .strategy(PROPAGATE)
            .build()
            .unwrap();
        let target = sc.site("A").translator;
        let ids: Vec<String> = (0..employees_n).map(|i| format!("e{i}")).collect();
        sc.add_actor(Box::new(PoissonWriter::sql_updates(
            target,
            gap,
            until,
            "employees",
            "salary",
            "empid",
            ids,
            (1, 1_000_000),
        )));
        sc
    }
}
