//! # hcm-bench — the experiment harness
//!
//! One self-contained bench target per experiment of `EXPERIMENTS.md`
//! (`harness = false`; no external bench framework — the container has
//! no registry access). Each target does two things:
//!
//! 1. prints the experiment's **series table** (the reproduction of the
//!    paper's qualitative claims as numbers — miss rates, message
//!    counts, latencies, detection times) once at startup;
//! 2. wall-clock-times the underlying machinery with [`harness::time`]
//!    (simulation throughput, rule-engine and checker costs) and emits
//!    a `BENCH_<name>.json` report under `target/`.
//!
//! Run everything with `cargo bench --workspace`; the tables land on
//! stderr and in `EXPERIMENTS.md`'s measured columns.

/// Minimal wall-clock bench harness replacing the former Criterion
/// targets: run a closure N times, keep mean/min, render a table plus a
/// hand-rolled `BENCH_<name>.json` (same no-serde policy as `hcm-obs`).
pub mod harness {
    use std::time::Instant;

    /// One timed case.
    pub struct Timing {
        /// Case label, e.g. `simulate_1h/10`.
        pub name: String,
        /// Mean wall-clock milliseconds over the samples.
        pub mean_ms: f64,
        /// Fastest sample in milliseconds.
        pub min_ms: f64,
        /// Sample count.
        pub samples: u32,
    }

    /// Time `f` over `samples` runs (after one untimed warm-up).
    pub fn time<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) -> Timing {
        std::hint::black_box(f());
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            total += ms;
            min = min.min(ms);
        }
        Timing {
            name: name.to_string(),
            mean_ms: total / f64::from(samples),
            min_ms: min,
            samples,
        }
    }

    /// Print the timing table to stderr and write
    /// `target/BENCH_<bench>.json` (best effort — a read-only target
    /// dir only costs the file, not the run).
    pub fn report(bench: &str, timings: &[Timing]) {
        eprintln!(
            "
[bench:{bench}]"
        );
        eprintln!(
            "  {:<40} {:>12} {:>12} {:>8}",
            "case", "mean (ms)", "min (ms)", "n"
        );
        for t in timings {
            eprintln!(
                "  {:<40} {:>12.2} {:>12.2} {:>8}",
                t.name, t.mean_ms, t.min_ms, t.samples
            );
        }
        let json = to_json(bench, timings);
        // Bench binaries run with the package dir as cwd; anchor the
        // report in the workspace target dir instead.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("BENCH_{bench}.json"));
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("  wrote {}", path.display());
        }
    }

    /// Render the report as JSON (hand-rolled; labels are ASCII
    /// identifiers so plain escaping suffices).
    #[must_use]
    pub fn to_json(bench: &str, timings: &[Timing]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"bench\":\"{bench}\",\"cases\":["));
        for (i, t) in timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"mean_ms\":{:.3},\"min_ms\":{:.3},\"samples\":{}}}",
                t.name, t.mean_ms, t.min_ms, t.samples
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Common scenario builders shared by the bench targets.
pub mod scenarios {
    use hcm_core::{SimDuration, SimTime};
    use hcm_toolkit::backends::RawStore;
    use hcm_toolkit::workload::PoissonWriter;
    use hcm_toolkit::{Scenario, ScenarioBuilder};

    /// CM-RID for the notify-source salary site.
    pub const RID_SRC: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

    /// CM-RID for the writable destination salary site.
    pub const RID_DST: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

    /// The §4.2 propagation strategy.
    pub const PROPAGATE: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

    /// Fresh employees database with `n` rows.
    #[must_use]
    pub fn employees(n: usize) -> hcm_ris::relational::Database {
        let mut db = hcm_ris::relational::Database::new();
        db.create_table("employees", &["empid", "salary"]).unwrap();
        for i in 0..n {
            db.execute(&format!(
                "INSERT INTO employees VALUES ('e{i}', {})",
                1000 + i
            ))
            .unwrap();
        }
        db
    }

    /// The salary scenario with a Poisson workload over `employees`
    /// employees, mean update gap `gap`, running until `until`.
    #[must_use]
    pub fn salary_scenario(
        seed: u64,
        employees_n: usize,
        gap: SimDuration,
        until: SimTime,
    ) -> Scenario {
        let mut sc = ScenarioBuilder::new(seed)
            .site("A", RawStore::Relational(employees(employees_n)), RID_SRC)
            .unwrap()
            .site("B", RawStore::Relational(employees(employees_n)), RID_DST)
            .unwrap()
            .strategy(PROPAGATE)
            .build()
            .unwrap();
        let target = sc.site("A").translator;
        let ids: Vec<String> = (0..employees_n).map(|i| format!("e{i}")).collect();
        sc.add_actor(Box::new(PoissonWriter::sql_updates(
            target,
            gap,
            until,
            "employees",
            "salary",
            "empid",
            ids,
            (1, 1_000_000),
        )));
        sc
    }
}
