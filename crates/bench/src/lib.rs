//! # hcm-bench — the experiment harness
//!
//! One self-contained bench target per experiment of `EXPERIMENTS.md`
//! (`harness = false`; no external bench framework — the container has
//! no registry access). Each target does two things:
//!
//! 1. prints the experiment's **series table** (the reproduction of the
//!    paper's qualitative claims as numbers — miss rates, message
//!    counts, latencies, detection times) once at startup;
//! 2. wall-clock-times the underlying machinery with [`harness::time`]
//!    (simulation throughput, rule-engine and checker costs) and emits
//!    a `BENCH_<name>.json` report under `target/`.
//!
//! Run everything with `cargo bench --workspace`; the tables land on
//! stderr and in `EXPERIMENTS.md`'s measured columns.

/// Minimal wall-clock bench harness replacing the former Criterion
/// targets: run a closure N times, keep mean/min/percentiles, render a
/// table plus a hand-rolled `BENCH_<name>.json` (same no-serde policy
/// as `hcm-obs`), and optionally diff against a committed baseline.
pub mod harness {
    use std::time::Instant;

    /// One timed case.
    pub struct Timing {
        /// Case label, e.g. `simulate_1h/10`.
        pub name: String,
        /// Mean wall-clock milliseconds over the samples.
        pub mean_ms: f64,
        /// Fastest sample in milliseconds.
        pub min_ms: f64,
        /// Median sample in milliseconds.
        pub p50_ms: f64,
        /// 95th-percentile sample in milliseconds (nearest-rank).
        pub p95_ms: f64,
        /// Sample count.
        pub samples: u32,
        /// Events processed per run, when the case measures throughput
        /// (see [`time_rate`]); `None` for pure-latency cases.
        pub events: Option<u64>,
    }

    impl Timing {
        /// Events per wall-clock second at the mean, when known.
        #[must_use]
        pub fn events_per_s(&self) -> Option<f64> {
            self.events
                .map(|e| e as f64 / (self.mean_ms / 1000.0))
                .filter(|r| r.is_finite())
        }
    }

    /// `true` when a smoke run was requested (`HCM_BENCH_QUICK=1`):
    /// one sample per case, reduced sweeps. Used by CI.
    #[must_use]
    pub fn quick() -> bool {
        std::env::var("HCM_BENCH_QUICK").is_ok_and(|v| v != "0")
    }

    /// Effective sample count: `HCM_BENCH_SAMPLES` when set, `1` on a
    /// quick run, else the target's requested count.
    #[must_use]
    pub fn effective_samples(requested: u32) -> u32 {
        if let Ok(v) = std::env::var("HCM_BENCH_SAMPLES") {
            return v.parse::<u32>().unwrap_or(requested).max(1);
        }
        if quick() {
            return 1;
        }
        requested
    }

    /// Time `f` over `samples` runs (after one untimed warm-up).
    /// `samples` may be overridden by the environment — see
    /// [`effective_samples`].
    pub fn time<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) -> Timing {
        let mut t = time_rate(name, samples, || {
            std::hint::black_box(f());
            0
        });
        t.events = None;
        t
    }

    /// Like [`time`], but the closure reports how many events the run
    /// processed, so the case carries an events/sec throughput figure.
    /// Runs are deterministic per seed, so the count from the last
    /// sample stands for all of them.
    pub fn time_rate(name: &str, samples: u32, mut f: impl FnMut() -> u64) -> Timing {
        let samples = effective_samples(samples);
        std::hint::black_box(f());
        let mut runs = Vec::with_capacity(samples as usize);
        let mut events = 0;
        for _ in 0..samples {
            let t0 = Instant::now();
            events = std::hint::black_box(f());
            runs.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
        let mean = runs.iter().sum::<f64>() / f64::from(samples);
        let mut sorted = runs;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        // Nearest-rank percentile: ceil(q·n) − 1, clamped.
        let rank = |q: f64| -> f64 {
            let n = sorted.len();
            let i = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[i]
        };
        Timing {
            name: name.to_string(),
            mean_ms: mean,
            min_ms: sorted[0],
            p50_ms: rank(0.50),
            p95_ms: rank(0.95),
            samples,
            events: Some(events),
        }
    }

    /// Print the timing table to stderr, write
    /// `target/BENCH_<bench>.json` (best effort — a read-only target
    /// dir only costs the file, not the run), and, when a baseline was
    /// requested (`-- --baseline[=PATH]` or `HCM_BENCH_BASELINE`),
    /// print a per-case comparison against it.
    pub fn report(bench: &str, timings: &[Timing]) {
        eprintln!(
            "
[bench:{bench}]"
        );
        eprintln!(
            "  {:<40} {:>11} {:>11} {:>11} {:>11} {:>10} {:>6}",
            "case", "mean (ms)", "min (ms)", "p50 (ms)", "p95 (ms)", "events/s", "n"
        );
        for t in timings {
            let rate = t
                .events_per_s()
                .map_or_else(|| "-".to_string(), |r| format!("{r:.0}"));
            eprintln!(
                "  {:<40} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {rate:>10} {:>6}",
                t.name, t.mean_ms, t.min_ms, t.p50_ms, t.p95_ms, t.samples
            );
        }
        let json = to_json(bench, timings);
        // Bench binaries run with the package dir as cwd; anchor the
        // report in the workspace target dir instead.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("BENCH_{bench}.json"));
        if std::fs::write(&path, &json).is_ok() {
            eprintln!("  wrote {}", path.display());
        }
        let gate = gate_pct();
        if let Some(base) = baseline_path(bench, gate.is_some()) {
            let compared = compare_to_baseline(bench, timings, &base);
            if let Some(pct) = gate {
                let failed: Vec<_> = compared
                    .iter()
                    .filter(|(_, base, now)| *now > base * (1.0 + pct / 100.0))
                    .collect();
                if failed.is_empty() {
                    eprintln!("  gate: ok (threshold +{pct:.0}%)");
                } else {
                    for (name, base, now) in &failed {
                        let delta = (now / base - 1.0) * 100.0;
                        eprintln!(
                            "  gate: FAIL {name}: {now:.2} ms vs baseline {base:.2} ms \
                             ({delta:+.1}%, allowed +{pct:.0}%)"
                        );
                    }
                    let names: Vec<&str> = failed.iter().map(|(n, _, _)| n.as_str()).collect();
                    eprintln!(
                        "  gate: {} of {} cell(s) over threshold: {}",
                        failed.len(),
                        compared.len(),
                        names.join(", ")
                    );
                    std::process::exit(1);
                }
            }
        } else if gate.is_some() {
            eprintln!("  gate: no baseline found for {bench} — skipped");
        }
    }

    /// Regression-gate threshold, when requested: `--gate <pct>` /
    /// `--gate=<pct>` in the binary's args or the `HCM_BENCH_GATE` env
    /// var. A case whose fresh mean exceeds its committed baseline mean
    /// by more than `pct` percent makes the bench exit non-zero.
    #[must_use]
    pub fn gate_pct() -> Option<f64> {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if let Some(p) = a.strip_prefix("--gate=") {
                return p.parse().ok();
            }
            if a == "--gate" {
                return args.next()?.parse().ok();
            }
        }
        std::env::var("HCM_BENCH_GATE").ok()?.parse().ok()
    }

    /// Resolve the requested baseline file, if any: `--baseline=PATH`
    /// / `--baseline PATH` / bare `--baseline` in the binary's args,
    /// or the `HCM_BENCH_BASELINE` env var (a path, or `1` for the
    /// default). The default is the committed pre-optimization
    /// snapshot `benches/baselines/pre/BENCH_<bench>.json`. A gate run
    /// (`gated`) falls back to the default even when no baseline was
    /// named explicitly.
    fn baseline_path(bench: &str, gated: bool) -> Option<std::path::PathBuf> {
        let default = || {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../benches/baselines/pre")
                .join(format!("BENCH_{bench}.json"))
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if let Some(p) = a.strip_prefix("--baseline=") {
                return Some(p.into());
            }
            if a == "--baseline" {
                return match args.next() {
                    Some(p) if !p.starts_with('-') => Some(p.into()),
                    _ => Some(default()),
                };
            }
        }
        match std::env::var("HCM_BENCH_BASELINE") {
            Ok(v) if v == "1" || v.is_empty() => Some(default()),
            Ok(v) => Some(v.into()),
            Err(_) if gated => Some(default()),
            Err(_) => None,
        }
    }

    /// Diff fresh timings against a committed `BENCH_*.json`: per-case
    /// speedup (baseline mean / fresh mean), flagging regressions.
    /// Returns the matched `(case, baseline_ms, fresh_ms)` triples for
    /// the gate.
    fn compare_to_baseline(
        bench: &str,
        timings: &[Timing],
        path: &std::path::Path,
    ) -> Vec<(String, f64, f64)> {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("  baseline: {} not readable — skipped", path.display());
            return Vec::new();
        };
        let base = parse_case_means(&text);
        let mut matched = Vec::new();
        eprintln!("\n[bench:{bench}] vs baseline {}", path.display());
        eprintln!(
            "  {:<40} {:>13} {:>11} {:>9}",
            "case", "baseline (ms)", "now (ms)", "speedup"
        );
        for t in timings {
            match base.iter().find(|(n, _)| n == &t.name) {
                Some((_, b)) => {
                    let speedup = b / t.mean_ms;
                    let marker = if speedup < 0.9 { "  << regression" } else { "" };
                    eprintln!(
                        "  {:<40} {:>13.2} {:>11.2} {speedup:>8.2}x{marker}",
                        t.name, b, t.mean_ms
                    );
                    matched.push((t.name.clone(), *b, t.mean_ms));
                }
                None => eprintln!("  {:<40} {:>13} {:>11.2}", t.name, "absent", t.mean_ms),
            }
        }
        matched
    }

    /// Extract `(name, mean_ms)` pairs from a `BENCH_*.json` report.
    /// The format is our own (see [`to_json`]): scanning for the two
    /// fields is exact on every file we emit, old or new.
    #[must_use]
    pub fn parse_case_means(json: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut rest = json;
        while let Some(i) = rest.find("{\"name\":\"") {
            rest = &rest[i + 9..];
            let Some(q) = rest.find('"') else { break };
            let name = rest[..q].to_string();
            let Some(m) = rest.find("\"mean_ms\":") else {
                break;
            };
            let tail = &rest[m + 10..];
            let end = tail
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..end].parse::<f64>() {
                out.push((name, v));
            }
            rest = tail;
        }
        out
    }

    /// Execution-environment metadata embedded in every report:
    /// without it a committed baseline is uninterpretable (was it a
    /// quick run? how many cores? was the sharded executor on?). Keys
    /// never collide with the `{"name":"` / `"mean_ms":` markers that
    /// [`parse_case_means`] scans for.
    #[must_use]
    pub fn env_json() -> String {
        let cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
        let sim_threads = std::env::var("HCM_SIM_THREADS").unwrap_or_default();
        let sweep_threads = std::env::var("HCM_SWEEP_THREADS").unwrap_or_default();
        format!(
            "{{\"available_parallelism\":{cores},\"hcm_sim_threads\":\"{}\",\
             \"hcm_sweep_threads\":\"{}\",\"quick\":{}}}",
            sim_threads.replace('"', ""),
            sweep_threads.replace('"', ""),
            quick()
        )
    }

    /// Render the report as JSON (hand-rolled; labels are ASCII
    /// identifiers so plain escaping suffices).
    #[must_use]
    pub fn to_json(bench: &str, timings: &[Timing]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"bench\":\"{bench}\",\"env\":{},\"cases\":[",
            env_json()
        ));
        for (i, t) in timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"mean_ms\":{:.3},\"min_ms\":{:.3},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"samples\":{}",
                t.name, t.mean_ms, t.min_ms, t.p50_ms, t.p95_ms, t.samples
            ));
            if let (Some(events), Some(rate)) = (t.events, t.events_per_s()) {
                out.push_str(&format!(",\"events\":{events},\"events_per_s\":{rate:.0}"));
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn percentiles_from_sorted_samples() {
            let t = time("t", 4, || std::hint::black_box(1 + 1));
            assert!(t.min_ms <= t.p50_ms && t.p50_ms <= t.p95_ms);
            assert!(t.samples >= 1);
        }

        #[test]
        fn parse_roundtrip() {
            let t = Timing {
                name: "case_a".into(),
                mean_ms: 12.5,
                min_ms: 10.0,
                p50_ms: 12.0,
                p95_ms: 19.0,
                samples: 10,
                events: None,
            };
            let json = to_json("x", &[t]);
            let cases = parse_case_means(&json);
            assert_eq!(cases, vec![("case_a".to_string(), 12.5)]);
        }

        #[test]
        fn throughput_cases_parse_and_report_rate() {
            let t = Timing {
                name: "engine".into(),
                mean_ms: 2000.0,
                min_ms: 2000.0,
                p50_ms: 2000.0,
                p95_ms: 2000.0,
                samples: 3,
                events: Some(100_000),
            };
            assert_eq!(t.events_per_s(), Some(50_000.0));
            let json = to_json("x", &[t]);
            assert!(json.contains("\"events\":100000"));
            assert!(json.contains("\"events_per_s\":50000"));
            // Extra fields must not confuse the baseline scanner.
            assert_eq!(
                parse_case_means(&json),
                vec![("engine".to_string(), 2000.0)]
            );
        }

        #[test]
        fn parse_pre_percentile_format() {
            // Old reports lack p50/p95; the scanner must still read
            // them (committed baselines are in this format).
            let old = "{\"bench\":\"checker\",\"cases\":[{\"name\":\"validity\",\"mean_ms\":0.414,\"min_ms\":0.334,\"samples\":10}]}\n";
            assert_eq!(parse_case_means(old), vec![("validity".to_string(), 0.414)]);
        }
    }
}

/// Deterministic parallel sweep driver.
///
/// Experiment sweeps (poll period × update rate, employee count ×
/// horizon, seed batteries) are embarrassingly parallel: every cell
/// builds its own [`hcm_toolkit::Scenario`] from its key and returns
/// plain data. `Scenario` holds `Rc`/`RefCell` state and is not
/// `Send`, so the *job* crosses threads, never the scenario: each
/// worker constructs, runs, and drops its cells entirely locally.
///
/// Determinism: cells are handed out via an atomic cursor (so wall
/// clock decides *who* computes a cell) but results are placed back by
/// cell index and returned in input order (so scheduling never decides
/// *where* a result lands). A job that is a pure function of its key —
/// which scenario runs are, seeded sim-time simulation end to end —
/// therefore produces byte-identical tables and obs snapshots whether
/// the sweep runs on one thread or sixteen. The only global shared
/// state is the `Sym` interner, whose assignment order varies across
/// schedules by design; nothing observable orders by symbol id (see
/// `hcm_core::intern`).
pub mod sweep {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Worker count: `HCM_SWEEP_THREADS` when set (clamped to ≥ 1;
    /// `1` forces the serial path, useful for CI smoke runs and
    /// equivalence tests), otherwise the machine's available
    /// parallelism.
    #[must_use]
    pub fn worker_count() -> usize {
        match std::env::var("HCM_SWEEP_THREADS") {
            Ok(v) => v.parse::<usize>().unwrap_or(1).max(1),
            Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }

    /// Run `job` over every key, in parallel, returning results in
    /// input order. See the module docs for the determinism argument.
    pub fn run<K, R, F>(keys: &[K], job: F) -> Vec<R>
    where
        K: Sync,
        R: Send,
        F: Fn(&K) -> R + Sync,
    {
        let workers = worker_count().min(keys.len().max(1));
        if workers <= 1 {
            return run_serial(keys, job);
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(keys.len());
        slots.resize_with(keys.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let job = &job;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(key) = keys.get(i) else {
                                break;
                            };
                            done.push((i, job(key)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("sweep worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every cell computed"))
            .collect()
    }

    /// The serial reference: same cells, same order, one thread.
    pub fn run_serial<K, R, F>(keys: &[K], job: F) -> Vec<R>
    where
        F: Fn(&K) -> R,
    {
        keys.iter().map(job).collect()
    }
}

/// Common scenario builders shared by the bench targets.
pub mod scenarios {
    use hcm_core::{SimDuration, SimTime, Value};
    use hcm_toolkit::backends::RawStore;
    use hcm_toolkit::workload::PoissonWriter;
    use hcm_toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

    /// CM-RID for the notify-source salary site.
    pub const RID_SRC: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

    /// CM-RID for the writable destination salary site.
    pub const RID_DST: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

    /// The §4.2 propagation strategy.
    pub const PROPAGATE: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

    /// Fresh employees database with `n` rows.
    #[must_use]
    pub fn employees(n: usize) -> hcm_ris::relational::Database {
        let mut db = hcm_ris::relational::Database::new();
        db.create_table("employees", &["empid", "salary"]).unwrap();
        for i in 0..n {
            db.execute(&format!(
                "INSERT INTO employees VALUES ('e{i}', {})",
                1000 + i
            ))
            .unwrap();
        }
        db
    }

    /// The salary scenario with a Poisson workload over `employees`
    /// employees, mean update gap `gap`, running until `until`.
    #[must_use]
    pub fn salary_scenario(
        seed: u64,
        employees_n: usize,
        gap: SimDuration,
        until: SimTime,
    ) -> Scenario {
        let mut sc = ScenarioBuilder::new(seed)
            .site("A", RawStore::Relational(employees(employees_n)), RID_SRC)
            .unwrap()
            .site("B", RawStore::Relational(employees(employees_n)), RID_DST)
            .unwrap()
            .strategy(PROPAGATE)
            .build()
            .unwrap();
        let target = sc.site("A").translator;
        let ids: Vec<String> = (0..employees_n).map(|i| format!("e{i}")).collect();
        sc.add_actor_for(
            "A",
            Box::new(PoissonWriter::sql_updates(
                target,
                gap,
                until,
                "employees",
                "salary",
                "empid",
                ids,
                (1, 1_000_000),
            )),
        );
        sc
    }

    /// Depth of the private-write chain every engine-bench site runs
    /// (`N → W(p0) → … → W(p_DEPTH)`): each spontaneous store write
    /// triggers `DEPTH + 2` shell-matched events.
    pub const ENGINE_CHAIN_DEPTH: usize = 3;

    /// Distinct keys each engine-bench writer cycles through.
    const ENGINE_KEYS: u64 = 32;

    /// The engine scale-sweep scenario: `sites` KV sites, each with its
    /// own mapped base `k<s>`, a Poisson writer, and `rules_per_site`
    /// strategy rules — one `N(k<s>) → W(p<s>x0)` entry rule, a
    /// [`ENGINE_CHAIN_DEPTH`]-deep chain of CM-private write rules, and
    /// never-firing filler rules on distinct private bases (`q<s>xj`)
    /// that scale the per-site rule count without changing the event
    /// volume. All rule work is site-local, so the measured cost is the
    /// shell's dispatch + firing path, not the network model.
    #[must_use]
    pub fn engine_scenario(
        seed: u64,
        sites: usize,
        rules_per_site: usize,
        gap: SimDuration,
        until: SimTime,
    ) -> Scenario {
        engine_scenario_with(seed, sites, rules_per_site, gap, until, None)
    }

    /// [`engine_scenario`] on the sharded executor: sites (and their
    /// co-located writers) round-robin across `Some(shards)` worker
    /// threads (`None` defers to `HCM_SIM_THREADS`). All rule work is
    /// site-local, so this is the best-case workload for the
    /// conservative parallel mode.
    #[must_use]
    pub fn engine_scenario_with(
        seed: u64,
        sites: usize,
        rules_per_site: usize,
        gap: SimDuration,
        until: SimTime,
        shards: Option<u32>,
    ) -> Scenario {
        let depth = ENGINE_CHAIN_DEPTH;
        assert!(
            rules_per_site > depth,
            "need at least the entry rule + {depth} chain rules"
        );
        let mut builder = ScenarioBuilder::new(seed);
        let mut strategy = String::from("[locate]\n");
        for s in 0..sites {
            let rid = format!(
                "ris = kv\nservice = 1ms\n[interface]\n\
                 Ws(k{s}(n), b) -> N(k{s}(n), b) within 1s\n\
                 [map k{s}]\nkey = k/$p0\n"
            );
            builder = builder
                .site(
                    &format!("S{s}"),
                    RawStore::Kv(hcm_ris::kvstore::KvStore::new()),
                    &rid,
                )
                .expect("engine RID compiles");
            strategy.push_str(&format!("k{s} = S{s}\n"));
        }
        strategy.push_str("[private]\n");
        for s in 0..sites {
            for j in 0..=depth {
                strategy.push_str(&format!("p{s}x{j} = S{s}\n"));
            }
            for j in 0..rules_per_site - 1 - depth {
                strategy.push_str(&format!("q{s}x{j} = S{s}\n"));
            }
        }
        strategy.push_str("[strategy]\n");
        for s in 0..sites {
            strategy.push_str(&format!("N(k{s}(n), b) -> W(p{s}x0(n), b) within 5s\n"));
            for j in 0..depth {
                let next = j + 1;
                strategy.push_str(&format!(
                    "W(p{s}x{j}(n), b) -> W(p{s}x{next}(n), b) within 5s\n"
                ));
            }
            for j in 0..rules_per_site - 1 - depth {
                strategy.push_str(&format!("W(q{s}x{j}(n), b) -> W(p{s}x0(n), b) within 5s\n"));
            }
        }
        let mut builder = builder.strategy(&strategy);
        if let Some(k) = shards {
            builder = builder.shards(k);
        }
        let mut sc = builder.build().expect("engine strategy compiles");
        for s in 0..sites {
            let site = format!("S{s}");
            let target = sc.site(&site).translator;
            sc.add_actor_for(
                &site,
                Box::new(PoissonWriter::new(
                    target,
                    gap,
                    until,
                    (1, 1_000_000),
                    Box::new(move |n, v| SpontaneousOp::KvPut {
                        key: format!("k/u{}", n % ENGINE_KEYS),
                        value: Value::Int(v),
                    }),
                )),
            );
        }
        sc
    }
}
