//! E3 bench — Demarcation Protocol policies and the 2PC baseline:
//! denial rates, message economy, latency, availability.

use hcm_bench::harness;
use hcm_core::{SimDuration, SimTime};
use hcm_protocols::demarcation::{self, DemarcConfig, GrantPolicy};
use hcm_protocols::tpc;
use hcm_simkit::SimRng;

fn workload(seed: u64, n: usize) -> Vec<(SimTime, bool, i64)> {
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    (0..n)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
            (t, rng.chance(0.5), rng.int_in(1, 15))
        })
        .collect()
}

fn run_demarc(policy: GrantPolicy, ops: &[(SimTime, bool, i64)]) -> demarcation::DemarcScenario {
    let mut d = demarcation::build(DemarcConfig {
        seed: 1,
        x0: 0,
        y0: 1000,
        line: 500,
        policy,
    });
    for &(t, lower, delta) in ops {
        d.try_update(t, lower, delta);
    }
    d.run();
    d
}

fn print_series() {
    let ops = workload(2024, 150);
    eprintln!(
        "\n[E3] demarcation policies vs 2PC baseline ({} mixed updates):",
        ops.len()
    );
    eprintln!(
        "  {:<15} {:>6} {:>8} {:>10} {:>10} {:>12}",
        "scheme", "ok", "denied", "limit-reqs", "messages", "msg/ok-op"
    );
    for policy in [
        GrantPolicy::Requested,
        GrantPolicy::HalfAvailable,
        GrantPolicy::All,
    ] {
        let d = run_demarc(policy, &ops);
        assert!(d.invariant_held());
        let sx = d.stats_x.borrow();
        let sy = d.stats_y.borrow();
        let ok = sx.local_ok + sx.granted + sy.local_ok + sy.granted;
        let msgs = d.scenario.sim.network().total_sent();
        eprintln!(
            "  {:<15} {:>6} {:>8} {:>10} {:>10} {:>12.2}",
            format!("{policy:?}"),
            ok,
            sx.denied + sy.denied,
            sx.limit_requests + sy.limit_requests,
            msgs,
            msgs as f64 / ok as f64
        );
    }
    let mut t = tpc::build(1, 0, 1000);
    for &(at, lower, delta) in &ops {
        t.try_update(at, lower, delta);
    }
    t.run();
    let st = t.stats.borrow();
    eprintln!(
        "  {:<15} {:>6} {:>8} {:>10} {:>10} {:>12.2}",
        "2PC",
        st.committed,
        st.aborted_constraint + st.aborted_unavailable,
        "-",
        st.messages,
        st.messages as f64 / st.committed.max(1) as f64
    );
    let avg = st.latencies_ms.iter().sum::<u64>() as f64 / st.latencies_ms.len().max(1) as f64;
    eprintln!("  2PC mean commit latency: {avg:.0} ms; demarcation local update: ~52 ms");
    eprintln!("  shape: weak consistency wins msg/op and latency; both deny saturated updates.");
}

fn main() {
    print_series();

    let ops = workload(7, 150);
    let mut timings = Vec::new();
    for policy in [GrantPolicy::Requested, GrantPolicy::All] {
        timings.push(harness::time(
            &format!("protocol_run/{policy:?}"),
            5,
            || {
                let d = run_demarc(policy, &ops);
                d.stats_x.borrow().attempts
            },
        ));
    }
    timings.push(harness::time("tpc_run", 5, || {
        let mut t = tpc::build(7, 0, 1000);
        for &(at, lower, delta) in &ops {
            t.try_update(at, lower, delta);
        }
        t.run();
        t.stats.borrow().submitted
    }));
    harness::report("demarcation", &timings);
}
