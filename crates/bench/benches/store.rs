//! E16 bench — durable-store costs: codec encode/decode, WAL append
//! (memory and file-backed), checkpointing, and crash-recovery replay.
//!
//! The interesting numbers are per-record, since every shell/translator
//! durable mutation pays one append on the hot path.

use hcm_bench::harness;
use hcm_core::{ItemId, SimTime, Value};
use hcm_store::{FileStore, LogRecord, MemStore, StateStore, StoreConfig};

/// A representative mix of what shells and translators actually log.
fn workload(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let rec = match i % 4 {
                0 => LogRecord::PrivateWrite {
                    at: SimTime::from_millis(i as u64),
                    item: ItemId::with("Cx", [Value::from(format!("e{}", i % 16))]),
                    value: Value::Int(i as i64),
                },
                1 => LogRecord::RequestSent {
                    at: SimTime::from_millis(i as u64),
                    req_id: i as u64,
                },
                2 => LogRecord::RequestResolved { req_id: i as u64 },
                _ => LogRecord::WritePerformed { req_id: i as u64 },
            };
            rec.encode()
        })
        .collect()
}

fn print_series() {
    eprintln!("\n[E16] store costs vs log size (records | replay ms):");
    for n in [1_000usize, 10_000, 50_000] {
        let payloads = workload(n);
        let mut store = MemStore::new();
        for p in &payloads {
            store.append(p).unwrap();
        }
        let t0 = std::time::Instant::now();
        let rec = store.recover().unwrap();
        let decoded = rec
            .records
            .iter()
            .filter(|p| LogRecord::decode(p).is_ok())
            .count();
        assert_eq!(decoded, n);
        eprintln!(
            "  {:>8} records  {:>8.2} ms",
            n,
            t0.elapsed().as_secs_f64() * 1000.0
        );
    }
}

fn main() {
    print_series();

    let payloads = workload(10_000);
    let mut timings = Vec::new();

    timings.push(harness::time("encode_10k", 20, || {
        workload(10_000).iter().map(Vec::len).sum::<usize>()
    }));

    let encoded = payloads.clone();
    timings.push(harness::time("decode_10k", 20, || {
        encoded
            .iter()
            .filter(|p| LogRecord::decode(p).is_ok())
            .count()
    }));

    timings.push(harness::time("mem_append_10k", 20, || {
        let mut store = MemStore::new();
        for p in &payloads {
            store.append(p).unwrap();
        }
        store.record_count()
    }));

    timings.push(harness::time("mem_recover_10k", 20, || {
        let mut store = MemStore::new();
        for p in &payloads {
            store.append(p).unwrap();
        }
        store.recover().unwrap().records.len()
    }));

    // File-backed: real frames + CRCs on disk, with segment rotation.
    let dir = std::env::temp_dir().join(format!("hcm-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    timings.push(harness::time("file_append_10k", 5, || {
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = FileStore::open(&dir, StoreConfig::default()).unwrap();
        let mut bytes = 0;
        for p in &payloads {
            bytes += store.append(p).unwrap();
        }
        bytes
    }));
    timings.push(harness::time("file_recover_10k", 5, || {
        let mut store = FileStore::open(&dir, StoreConfig::default()).unwrap();
        store.recover().unwrap().records.len()
    }));
    timings.push(harness::time("file_ckpt_every_64", 5, || {
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = FileStore::open(&dir, StoreConfig::default()).unwrap();
        let snapshot = vec![0xAB; 4096];
        for (i, p) in payloads.iter().take(2_000).enumerate() {
            store.append(p).unwrap();
            if i % 64 == 63 {
                store.checkpoint(&snapshot).unwrap();
            }
        }
        store.recover().unwrap().records.len()
    }));
    let _ = std::fs::remove_dir_all(&dir);

    harness::report("store", &timings);
}
