//! E10 bench — validity checker and guarantee evaluator costs as the
//! trace grows, plus raw rule-engine throughput.

use hcm_bench::{harness, scenarios};
use hcm_checker::{check_validity, guarantee::check_guarantee, RuleSet};
use hcm_core::{Bindings, EventDesc, ItemId, SimDuration, SimTime, TemplateDesc, Term, Value};
use hcm_rulelang::parse_guarantee;
use hcm_toolkit::Scenario;

fn rule_set_of(scenario: &Scenario) -> RuleSet {
    let mut rs = RuleSet::new();
    for site in &scenario.sites {
        for (stmt, id) in site.rid.interfaces.iter().zip(&site.iface_ids) {
            rs.add_interface(*id, site.site, stmt);
        }
    }
    for rule in scenario.strategy.rules.iter() {
        rs.add_strategy(rule.id, rule.lhs_site, rule.rhs_site, &rule.rule);
    }
    rs
}

fn trace_of_size(updates: u64) -> (hcm_core::Trace, RuleSet) {
    let horizon = updates * 10;
    let mut sc = scenarios::salary_scenario(
        3,
        8,
        SimDuration::from_secs(10),
        SimTime::from_secs(horizon),
    );
    sc.run_to_quiescence();
    (sc.trace(), rule_set_of(&sc))
}

fn print_series() {
    eprintln!("\n[E10] checker cost vs trace size:");
    eprintln!(
        "  {:<10} {:>8} {:>14} {:>16}",
        "updates", "events", "validity (ms)", "guarantee (ms)"
    );
    let follows = parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();
    for updates in [25u64, 50, 100] {
        let (trace, rules) = trace_of_size(updates);
        let t0 = std::time::Instant::now();
        let rep = check_validity(&trace, &rules);
        let validity_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert!(rep.is_valid());
        let t1 = std::time::Instant::now();
        let g = check_guarantee(&trace, &follows, None);
        let guarantee_ms = t1.elapsed().as_secs_f64() * 1000.0;
        assert!(g.holds);
        eprintln!(
            "  {:<10} {:>8} {:>14.1} {:>16.1}",
            updates,
            trace.len(),
            validity_ms,
            guarantee_ms
        );
    }
}

fn main() {
    print_series();

    let (trace, rules) = trace_of_size(60);
    let follows = parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();

    let mut timings = Vec::new();
    timings.push(harness::time("validity", 10, || {
        check_validity(&trace, &rules).violations.len()
    }));
    timings.push(harness::time("guarantee_follows", 10, || {
        check_guarantee(&trace, &follows, None).instantiations
    }));

    // Rule-engine primitive: template matching throughput.
    let template = TemplateDesc::N {
        item: hcm_core::ItemPattern::with("salary1", [Term::var("n")]),
        value: Term::var("b"),
    };
    let events: Vec<EventDesc> = (0..1000)
        .map(|i| EventDesc::N {
            item: ItemId::with("salary1", [Value::from(format!("e{}", i % 10))]),
            value: Value::Int(i),
        })
        .collect();
    timings.push(harness::time("match_1000_events", 10, || {
        let mut hits = 0;
        for e in &events {
            let mut bind = Bindings::new();
            if template.match_desc(e, &mut bind) {
                hits += 1;
            }
        }
        hits
    }));
    harness::report("checker", &timings);
}
