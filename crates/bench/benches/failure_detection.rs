//! E7 bench — failure detection (§5): detection latency vs the
//! configured deadline, and the cost of failure episodes.

use hcm_bench::harness;
use hcm_core::{EventDesc, SimDuration, SimTime, Value};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::shell::FailureConfig;
use hcm_toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

fn scenario_with_deadline(seed: u64, deadline_ms: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            hcm_bench::scenarios::RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            hcm_bench::scenarios::RID_DST,
        )
        .unwrap()
        .strategy(hcm_bench::scenarios::PROPAGATE)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_millis(deadline_ms),
            escalation: SimDuration::from_secs(60),
            heartbeat: None,
        })
        .build()
        .unwrap();
    sc.overload(
        "B",
        SimTime::from_secs(5),
        SimTime::from_secs(500),
        SimDuration::from_secs(120),
    );
    sc.inject(
        SimTime::from_secs(10),
        "A",
        SpontaneousOp::Sql("update employees set salary = 1 where empid = 'e0'".into()),
    );
    sc
}

fn detection_latency(sc: &Scenario) -> Option<SimDuration> {
    let trace = sc.trace();
    let n = trace.events().iter().find(|e| e.desc.tag() == "N")?;
    let d = trace.events().iter().find(|e| {
        matches!(&e.desc, EventDesc::Custom { name, args }
            if name == "FailureDetected" && args.get(1) == Some(&Value::from("metric")))
    })?;
    Some(d.time.saturating_since(n.time))
}

fn print_series() {
    eprintln!("\n[E7] metric-failure detection latency vs deadline (overloaded DB):");
    eprintln!("  {:<16} {:>18}", "deadline (ms)", "detected after (ms)");
    for deadline in [1_000u64, 5_000, 15_000] {
        let mut sc = scenario_with_deadline(3, deadline);
        sc.run_until(SimTime::from_secs(400));
        let lat = detection_latency(&sc).expect("failure detected");
        eprintln!("  {:<16} {:>18}", deadline, lat.as_millis());
        assert!(lat.as_millis() >= deadline && lat.as_millis() <= deadline + 300);
    }
    eprintln!("  shape: detection tracks the deadline — the paper's point that the");
    eprintln!("  toolkit makes timeout constants explicit as metric guarantees (§5).");
}

fn main() {
    print_series();

    let timings = [harness::time("overload_episode", 5, || {
        let mut sc = scenario_with_deadline(9, 5_000);
        sc.run_to_quiescence();
        sc.site("B").shell_stats.borrow().metric_failures_detected
    })];
    harness::report("failure_detection", &timings);
}
