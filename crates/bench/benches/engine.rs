//! E17 bench — online engine scale sweep: sites × rules × event
//! volume.
//!
//! Each cell builds a fresh [`hcm_bench::scenarios::engine_scenario`]
//! (KV sites, per-site Poisson writers, site-local rule chains plus
//! filler rules that scale the rule count without changing the event
//! volume) and runs it to quiescence, so a cell's cost is everything a
//! real experiment pays: strategy compilation, shell construction,
//! workload generation, translation, rule dispatch, and firing. The
//! throughput column counts *trace events* (every CM event the engine
//! recorded), which is `(chain depth + 3) ×` the spontaneous op count.
//!
//! Case names are `s<sites>_r<total rules>_e<spontaneous ops>`; the
//! last cell (max sites × max rules) is the headline number for the
//! dispatch-index + zero-clone work — compare with
//! `benches/baselines/{pre,post}/BENCH_engine.json`.

use hcm_bench::{harness, scenarios};
use hcm_core::{SimDuration, SimTime};
use hcm_simkit::RunOutcome;

struct Cell {
    sites: usize,
    rules_per_site: usize,
    /// Target spontaneous (store-write) op count across all sites.
    ops: u64,
    /// Worker threads for the sharded executor: `None` keeps the
    /// historical case name and defers to `HCM_SIM_THREADS` (unset ⇒
    /// serial); `Some(k)` pins `k` shards and appends a `_tk` suffix.
    /// Results are byte-identical either way; only wall-clock
    /// differs.
    threads: Option<u32>,
}

impl Cell {
    fn name(&self) -> String {
        let base = format!(
            "s{}_r{}_e{}k",
            self.sites,
            self.sites * self.rules_per_site,
            self.ops / 1000
        );
        match self.threads {
            Some(t) => format!("{base}_t{t}"),
            None => base,
        }
    }

    /// Build + run the cell; returns the trace event count.
    fn run(&self) -> u64 {
        // One writer per site at one op per simulated second: the sim
        // horizon carries the event-volume axis.
        let per_site_secs = (self.ops / self.sites as u64).max(1);
        let mut sc = scenarios::engine_scenario_with(
            17,
            self.sites,
            self.rules_per_site,
            SimDuration::from_secs(1),
            SimTime::from_secs(per_site_secs),
            self.threads,
        );
        assert_eq!(sc.run_to_quiescence(), RunOutcome::Quiescent);
        sc.trace().len() as u64
    }
}

fn main() {
    let cells = [
        Cell {
            sites: 4,
            rules_per_site: 4,
            ops: 20_000,
            threads: None,
        },
        Cell {
            sites: 4,
            rules_per_site: 64,
            ops: 20_000,
            threads: None,
        },
        Cell {
            sites: 16,
            rules_per_site: 4,
            ops: 40_000,
            threads: None,
        },
        Cell {
            sites: 16,
            rules_per_site: 64,
            ops: 40_000,
            threads: None,
        },
        Cell {
            sites: 16,
            rules_per_site: 256,
            ops: 100_000,
            threads: None,
        },
        Cell {
            sites: 256,
            rules_per_site: 4,
            ops: 100_000,
            threads: None,
        },
        Cell {
            sites: 256,
            rules_per_site: 128,
            ops: 100_000,
            threads: None,
        },
        // Thread axis on the two largest cells: same workloads on the
        // sharded executor. Speedup is bounded by the host's core
        // count (`env.available_parallelism` in the report).
        Cell {
            sites: 256,
            rules_per_site: 4,
            ops: 100_000,
            threads: Some(2),
        },
        Cell {
            sites: 256,
            rules_per_site: 4,
            ops: 100_000,
            threads: Some(4),
        },
        Cell {
            sites: 256,
            rules_per_site: 128,
            ops: 100_000,
            threads: Some(2),
        },
        Cell {
            sites: 256,
            rules_per_site: 128,
            ops: 100_000,
            threads: Some(4),
        },
        Cell {
            sites: 256,
            rules_per_site: 128,
            ops: 100_000,
            threads: Some(8),
        },
    ];
    // Quick (CI) mode keeps the two smallest cells with their full
    // event volume so case names still line up with the committed
    // baselines for the regression gate.
    let cells = if harness::quick() {
        &cells[..2]
    } else {
        &cells[..]
    };
    let mut timings = Vec::new();
    for c in cells {
        timings.push(harness::time_rate(&c.name(), 3, || c.run()));
    }
    harness::report("engine", &timings);
}
