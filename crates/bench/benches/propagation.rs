//! E1 bench — update propagation (§4.2): end-to-end latency series and
//! engine throughput.

use hcm_bench::{harness, scenarios};
use hcm_core::{SimDuration, SimTime};

/// Print the E1 series: per-update propagation latency (Ws → W)
/// distribution for the notify+write deployment.
fn print_series() {
    let mut sc =
        scenarios::salary_scenario(1, 10, SimDuration::from_secs(20), SimTime::from_secs(4000));
    sc.run_to_quiescence();
    let trace = sc.trace();
    let mut latencies: Vec<u64> = Vec::new();
    for e in trace.events() {
        if e.desc.tag() != "W" {
            continue;
        }
        // Walk the provenance chain W → WR → N → Ws.
        let mut cur = e.trigger;
        let mut origin = None;
        while let Some(id) = cur {
            let t = trace.get(id).expect("trigger exists");
            origin = Some(t.time);
            cur = t.trigger;
        }
        if let Some(start) = origin {
            latencies.push((e.time - start).as_millis());
        }
    }
    latencies.sort_unstable();
    let pct = |p: usize| latencies[latencies.len() * p / 100];
    eprintln!("\n[E1] update propagation, notify(2s) + strategy(5s) + write(1s):");
    eprintln!("  updates propagated : {}", latencies.len());
    eprintln!("  latency p50        : {} ms", pct(50));
    eprintln!("  latency p95        : {} ms", pct(95));
    eprintln!(
        "  latency max        : {} ms (bound: 8000 ms)",
        latencies.last().unwrap()
    );
    assert!(*latencies.last().unwrap() < 8_000);
    eprintln!("\n[E1] observability snapshot (hcm-obs registry):");
    for line in sc.metrics_table().lines() {
        eprintln!("  {line}");
    }
}

fn main() {
    print_series();

    let mut timings = Vec::new();
    for employees in [1usize, 10, 50] {
        timings.push(harness::time(
            &format!("simulate_1h/{employees}"),
            5,
            || {
                let mut sc = scenarios::salary_scenario(
                    7,
                    employees,
                    SimDuration::from_secs(30),
                    SimTime::from_secs(3600),
                );
                sc.run_to_quiescence();
                sc.trace().len()
            },
        ));
    }
    harness::report("propagation", &timings);
}
