//! E8/E9 bench — traffic economy of the interface and strategy menu:
//! conditional notify suppression, cached propagation, periodic notify
//! cost.

use hcm_bench::harness;
use hcm_core::{ItemId, SimTime, Value};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const RID_COND_TMPL: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), a, b) when abs(b - a) > FRAC * a -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

const RID_PLAIN: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

/// Random-walk workload: mostly small (±1–3 %) moves, occasional jumps.
fn run_with_rid(rid_src: &str, seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            rid_src,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            hcm_bench::scenarios::RID_DST,
        )
        .unwrap()
        .strategy(hcm_bench::scenarios::PROPAGATE)
        .build()
        .unwrap();
    let mut rng = hcm_simkit::SimRng::seeded(seed * 11);
    let mut v: i64 = 100_000;
    for i in 0..60u64 {
        let frac = if rng.chance(0.15) {
            rng.int_in(15, 40)
        } else {
            rng.int_in(1, 8)
        };
        let sign = if rng.chance(0.5) { 1 } else { -1 };
        v = (v + sign * v * frac / 100).max(10_000);
        sc.inject(
            SimTime::from_secs(10 + i * 10),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e0'"
            )),
        );
    }
    sc.run_to_quiescence();
    sc
}

fn print_series() {
    eprintln!("\n[E9] conditional-notify suppression vs threshold (60 random-walk updates):");
    eprintln!(
        "  {:<12} {:>14} {:>12} {:>22}",
        "threshold", "notifications", "suppressed", "max mirror error (%)"
    );
    for frac in ["0.0", "0.05", "0.1", "0.25"] {
        let rid = RID_COND_TMPL.replace("FRAC", frac);
        let sc = run_with_rid(&rid, 5);
        let stats = sc.site("A").translator_stats.borrow().clone();
        // Mirror error: worst *settled* relative gap — measured just
        // before each source change, i.e. after the previous change's
        // propagation (if any) completed. Mid-flight transients are a
        // property of every strategy and are excluded.
        let trace = sc.trace();
        let x = ItemId::with("salary1", [Value::from("e0")]);
        let y = ItemId::with("salary2", [Value::from("e0")]);
        let mut worst: f64 = 0.0;
        let change_times: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.desc.tag() == "Ws")
            .map(|e| e.time)
            .collect();
        let mut probes: Vec<_> = change_times
            .iter()
            .skip(1)
            .map(|t| t.saturating_sub(hcm_core::SimDuration::from_millis(1)))
            .collect();
        probes.push(trace.end_time());
        for t in probes {
            let (Some(xv), Some(yv)) = (
                trace.value_at(&x, t).and_then(|v| v.as_f64()),
                trace.value_at(&y, t).and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            if xv != 0.0 {
                worst = worst.max(((xv - yv).abs() / xv.abs()) * 100.0);
            }
        }
        eprintln!(
            "  {:<12} {:>14} {:>12} {:>22.1}",
            frac, stats.notifications, stats.suppressed, worst
        );
    }
    eprintln!("  shape: higher thresholds trade traffic for a bounded mirror error.");

    // Plain interface baseline.
    let plain = run_with_rid(RID_PLAIN, 5);
    eprintln!(
        "  plain notify interface: {} notifications, 0 suppressed",
        plain.site("A").translator_stats.borrow().notifications
    );
}

fn main() {
    print_series();

    let rid = RID_COND_TMPL.replace("FRAC", "0.1");
    let timings = [
        harness::time("plain_notify_60_updates", 5, || {
            run_with_rid(RID_PLAIN, 9).trace().len()
        }),
        harness::time("conditional_notify_60_updates", 5, || {
            run_with_rid(&rid, 9).trace().len()
        }),
    ];
    harness::report("interface_modes", &timings);
}
