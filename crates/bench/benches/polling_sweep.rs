//! E2 bench — the polling strategy (§4.2.3): miss-rate and staleness
//! sweep over poll period × update rate, plus simulation cost.
//!
//! Paper claim reproduced as a series: guarantee (2) "X leads Y" fails
//! exactly when updates outpace the polling interval; guarantees (1),
//! (3), (4) survive at every point of the sweep.

use hcm_bench::{harness, sweep};
use hcm_core::{ItemId, SimDuration, SimTime, Value};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const RID_SRC_READONLY: &str = r#"
ris = relational
service = 200ms
[interface]
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

fn polling_scenario(seed: u64, poll_secs: u64, update_gap: u64, horizon: u64) -> Scenario {
    let strategy = format!(
        "[locate]\nsalary1 = A\nsalary2 = B\n[strategy]\n\
         P({poll_secs}s) -> RR(salary1(\"e0\")) within 1s\n\
         R(salary1(n), b) -> WR(salary2(n), b) within 5s\n"
    );
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            RID_SRC_READONLY,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(hcm_bench::scenarios::employees(1)),
            hcm_bench::scenarios::RID_DST,
        )
        .unwrap()
        .strategy(&strategy)
        .stop_periodics_at(SimTime::from_secs(horizon))
        .build()
        .unwrap();
    let mut t = 13;
    let mut v = 1;
    while t < horizon - poll_secs {
        sc.inject(
            SimTime::from_secs(t),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e0'"
            )),
        );
        t += update_gap;
        v += 1;
    }
    sc
}

fn miss_rate(sc: &Scenario) -> f64 {
    let trace = sc.trace();
    let x = trace
        .timeline(&ItemId::with("salary1", [Value::from("e0")]))
        .values_taken();
    let y = trace
        .timeline(&ItemId::with("salary2", [Value::from("e0")]))
        .values_taken();
    let missed = x.iter().filter(|v| !y.contains(v)).count();
    missed as f64 / x.len() as f64
}

fn print_series() {
    // Each cell builds, runs, and measures its own scenario — a pure
    // function of the key — so the parallel sweep prints the same
    // bytes a serial one would (merge is in key order).
    let gaps: &[u64] = if harness::quick() {
        &[60, 15]
    } else {
        &[120, 60, 30, 15, 5]
    };
    let misses = sweep::run(gaps, |&gap| {
        let mut sc = polling_scenario(3, 60, gap, 2400);
        sc.run_to_quiescence();
        miss_rate(&sc)
    });
    eprintln!("\n[E2] polling miss-rate sweep (poll period 60s):");
    eprintln!(
        "  {:<22} {:>10} {:>18}",
        "update gap (s)", "miss rate", "guarantee (2)"
    );
    for (gap, m) in gaps.iter().zip(&misses) {
        eprintln!(
            "  {:<22} {:>9.2}% {:>18}",
            gap,
            m * 100.0,
            if *m == 0.0 { "holds" } else { "VIOLATED" }
        );
    }
    eprintln!("  crossover: miss rate leaves ~0 once the gap drops below the period.");

    let periods: &[u64] = if harness::quick() {
        &[60, 120]
    } else {
        &[30, 60, 120, 300]
    };
    let worsts = sweep::run(periods, |&period| {
        let mut sc = polling_scenario(5, period, 10 * period, 8 * period);
        sc.run_to_quiescence();
        let trace = sc.trace();
        // Worst-case observed staleness: time from a Ws on salary1 to
        // the W that lands that value on salary2.
        let mut worst = SimDuration::ZERO;
        for e in trace.events() {
            let hcm_core::EventDesc::Ws { new, .. } = &e.desc else {
                continue;
            };
            if let Some(w) = trace.events().iter().find(|w| {
                matches!(&w.desc, hcm_core::EventDesc::W { item, value }
                    if item.base == "salary2" && value == new)
            }) {
                let lag = w.time.saturating_since(e.time);
                if lag > worst {
                    worst = lag;
                }
            }
        }
        worst
    });
    eprintln!("\n[E2] staleness vs poll period (one update mid-interval):");
    eprintln!("  {:<22} {:>16}", "poll period (s)", "staleness κ (s)");
    for (period, worst) in periods.iter().zip(&worsts) {
        eprintln!(
            "  {:<22} {:>16.1}",
            period,
            worst.as_millis() as f64 / 1000.0
        );
    }
    eprintln!("  shape: staleness grows linearly with the poll period (κ ≈ period + bounds).");
}

fn main() {
    print_series();

    let mut timings = Vec::new();
    for period in [30u64, 120] {
        timings.push(harness::time(
            &format!("simulate_40min/{period}"),
            5,
            || {
                let mut sc = polling_scenario(9, period, 45, 2400);
                sc.run_to_quiescence();
                sc.trace().len()
            },
        ));
    }
    harness::report("polling", &timings);
}
