//! Rule identities.
//!
//! The rule ASTs (interface statements, strategy rules, guarantees) live
//! in `hcm-rulelang`; events only need to *name* the rule that generated
//! them (the `rule` component of the six-tuple). [`RuleId`] is that name
//! and [`RuleRegistry`] maps ids back to human-readable rule text for
//! diagnostics and for the checker's property-5/6 reports.

use std::fmt;

/// Identifier of a registered interface or strategy rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Registry assigning stable ids to rules and remembering their printed
/// form. The toolkit registers every interface statement and strategy
/// rule here during initialization.
#[derive(Debug, Default, Clone)]
pub struct RuleRegistry {
    texts: Vec<String>,
}

impl RuleRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a rule, returning its id. The text is the rule's printed
    /// form, used only for diagnostics.
    pub fn register(&mut self, text: impl Into<String>) -> RuleId {
        let id = RuleId(self.texts.len() as u32);
        self.texts.push(text.into());
        id
    }

    /// The printed form of a rule, if the id is known.
    #[must_use]
    pub fn text(&self, id: RuleId) -> Option<&str> {
        self.texts.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// `true` when no rule has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterate `(id, text)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &str)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (RuleId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = RuleRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("N(X, b) -> WR(Y, b) within 5s");
        let b = reg.register("WR(Y, b) -> W(Y, b) within 1s");
        assert_ne!(a, b);
        assert_eq!(reg.text(a), Some("N(X, b) -> WR(Y, b) within 5s"));
        assert_eq!(reg.text(RuleId(99)), None);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.iter().count(), 2);
        assert_eq!(a.to_string(), "r0");
    }
}
