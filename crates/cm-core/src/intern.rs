//! A process-wide symbol table for item base names.
//!
//! Hot paths hash, compare, and route on item base names constantly: a
//! `String`-keyed [`crate::ItemId`] is cloned and re-hashed on every
//! trace push, routing decision, and state lookup. [`Sym`] replaces
//! `String` in [`crate::ItemId`] / [`crate::ItemPattern`] so equality
//! and hashing touch a `u32` symbol instead of string bytes; the
//! display name resolves through the interned `&'static str` only at
//! formatting time.
//!
//! Determinism: symbols are assigned in first-intern order, which under
//! the parallel sweep driver depends on thread scheduling. `Ord` is
//! therefore defined by *string content*, never by symbol id, so
//! `BTreeMap`s and sorts keyed on `Sym` order identically in serial and
//! parallel runs. (`Hash` uses the id — `HashMap` iteration order is
//! unspecified anyway, and every determinism-sensitive structure in the
//! workspace is a `BTreeMap` or an explicit sort.)

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Mutex, OnceLock};

/// An interned string symbol: a `u32` id plus the leaked `&'static str`
/// it names. `Copy`; equality and hashing are O(1) on the id; ordering
/// is by string content (see module docs).
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    s: &'static str,
}

fn table() -> &'static Mutex<HashMap<&'static str, Sym>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, Sym>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Sym {
    /// Intern `s`, returning its symbol (allocating one on first sight).
    /// Interning the same string twice yields the same symbol for the
    /// lifetime of the process.
    #[must_use]
    pub fn intern(s: &str) -> Sym {
        let mut t = table().lock().expect("interner poisoned");
        if let Some(&sym) = t.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Sym {
            id: u32::try_from(t.len()).expect("interner overflow"),
            s: leaked,
        };
        t.insert(leaked, sym);
        sym
    }

    /// The interned string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.s
    }

    /// The `u32` symbol id. Assigned in first-intern order: stable
    /// within a run, **not** across runs or thread schedules — never
    /// order output by it.
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // By content, not id: keeps sort order deterministic when the
        // interning order varied (parallel sweeps).
        self.s.cmp(other.s)
    }
}

impl Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.s
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.s
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.s)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.s, f)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Sym {
        *s
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.s == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.s == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.s == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.s
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.s
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let a = Sym::intern("alpha-test-sym");
        let b = Sym::intern("alpha-test-sym");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        let a = Sym::intern("sym-one");
        let b = Sym::intern("sym-two");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn ord_is_by_content() {
        // Intern in reverse lexicographic order; Ord must still sort
        // lexicographically (id order would not).
        let z = Sym::intern("zzz-ord-test");
        let a = Sym::intern("aaa-ord-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn string_comparisons() {
        let s = Sym::intern("cmp-test");
        assert_eq!(s, "cmp-test");
        assert_eq!("cmp-test", s);
        assert_eq!(s, String::from("cmp-test"));
        assert!(s != "other");
    }

    #[test]
    fn deref_and_display() {
        let s = Sym::intern("disp-test");
        assert_eq!(s.len(), 9);
        assert_eq!(format!("{s}"), "disp-test");
        assert_eq!(format!("{s:?}"), "\"disp-test\"");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let syms: Vec<Sym> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Sym::intern("race-test-sym")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in syms.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
