//! Sites.
//!
//! A *site* in the paper hosts one database (Raw Information Source) and,
//! usually, a CM-Shell; a site without a shell is proxied by a shell at
//! another site (Fig. 1, Site 3). Events "have a unique site" (§3.2);
//! strategy-rule distribution and the in-order-delivery property
//! (Appendix property 7) are both keyed by site.

use std::fmt;

/// Identifier of a site. Small and `Copy`; names are kept in the toolkit
/// configuration, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(n: u32) -> Self {
        SiteId(n)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_order() {
        assert_eq!(SiteId::new(3).to_string(), "site3");
        assert!(SiteId::new(1) < SiteId::new(2));
        assert_eq!(SiteId::new(7).index(), 7);
    }
}
