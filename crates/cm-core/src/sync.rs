//! Shared mutable state handles.
//!
//! The toolkit historically shared per-site mutable state (CM-private
//! data, guarantee registries, durable stores) through `Rc<RefCell<…>>`
//! — sound because the simulation was single-threaded. The sharded
//! executor moves actors onto worker threads, so those handles are now
//! [`Shared`], a thin `Arc<Mutex<…>>` wrapper that keeps the familiar
//! `borrow`/`borrow_mut` call shape. Lock scopes are exactly the old
//! borrow scopes (which `RefCell` already proved non-reentrant), and
//! each site's state is only ever touched by that site's co-located
//! actors plus post-run inspection, so contention is nil.

use std::sync::{Arc, Mutex, MutexGuard};

/// A cheaply clonable, thread-safe shared cell.
#[derive(Debug, Default)]
pub struct Shared<T: ?Sized>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wrap a value.
    #[must_use]
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }
}

impl<T: ?Sized> Shared<T> {
    /// Lock for reading. Named `borrow` to match the `RefCell` call
    /// shape this type replaced.
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a holder panicked).
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Shared lock poisoned")
    }

    /// Lock for writing. See [`Shared::borrow`].
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a holder panicked).
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Shared lock poisoned")
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Shared::new(1);
        let b = a.clone();
        *a.borrow_mut() += 1;
        assert_eq!(*b.borrow(), 2);
    }

    #[test]
    fn usable_across_threads() {
        let s = Shared::new(Vec::new());
        let t = s.clone();
        std::thread::spawn(move || t.borrow_mut().push(7))
            .join()
            .unwrap();
        assert_eq!(*s.borrow(), vec![7]);
    }
}
