//! Virtual time.
//!
//! The paper reasons about interfaces, strategies and guarantees in
//! global "physical" time (Appendix A: "we use time mainly for reasoning
//! about correctness … in practice we do not require synchronized
//! clocks"). Our reproduction runs on a simulated global clock, so the
//! reasoning-time and the implementation-time coincide and metric
//! guarantees (`→δ`, κ-bounds) can be *checked exactly*.
//!
//! Time is counted in integer **milliseconds** since the start of the
//! simulation. The paper's examples use seconds; [`SimDuration::from_secs`]
//! and friends keep specs readable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated global clock (milliseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant `secs` seconds after the start of the simulation.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Instant `ms` milliseconds after the start of the simulation.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the start of the simulation.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the simulation (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The duration from `earlier` to `self`, saturating at zero when
    /// `earlier` is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self − d`, saturating at the start of the simulation.
    #[must_use]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// `ms` milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Length in milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Scale the duration by an integer factor.
    #[must_use]
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(5).saturating_sub(SimDuration::from_secs(10)),
            SimTime::ZERO
        );
        assert_eq!(SimDuration::from_secs(2).mul(3), SimDuration::from_secs(6));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(1234).to_string(), "t=1.234s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }
}
