//! Terms, bindings, and event templates.
//!
//! Appendix A of the paper defines an *event template* as "an event
//! descriptor in which some of the components are parameterized or
//! wild-carded", and a *matching interpretation* `mi(E, 𝓔)` as the
//! variable assignment under which template `𝓔` yields event `E`.
//! [`Term`] is a template component, [`Bindings`] is the matching
//! interpretation, and [`TemplateDesc`] mirrors [`EventDesc`]
//! (`crate::event::EventDesc`) with terms in value positions.
//!
//! The special `false` template `𝓕` ([`TemplateDesc::False`]) matches no
//! event; it is how the *no-spontaneous-write* interface is written:
//! `Ws(X, b) → 𝓕`.

use crate::event::EventDesc;
use crate::item::ItemPattern;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A component of a template: a named variable, a constant, or a
/// wild-card (`*` in the paper — "a parameter whose name is not
/// important").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A rule variable such as `b` in `WR(X, b)`. Lower-case by the
    /// paper's convention, though this is not enforced.
    Var(String),
    /// A ground constant.
    Const(Value),
    /// The wild-card `*`: matches anything, binds nothing.
    Wild,
}

impl Term {
    /// Convenience constructor for a variable term.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Unify the term with a concrete value, extending `bindings`.
    /// A variable already bound must agree with its binding.
    pub fn unify(&self, value: &Value, bindings: &mut Bindings) -> bool {
        match self {
            Term::Wild => true,
            Term::Const(c) => c == value,
            Term::Var(name) => match bindings.get(name) {
                Some(bound) => bound == value,
                None => {
                    bindings.bind(name.clone(), value.clone());
                    true
                }
            },
        }
    }

    /// Resolve the term to a value under `bindings`. Wild-cards and
    /// unbound variables yield `None`.
    #[must_use]
    pub fn instantiate(&self, bindings: &Bindings) -> Option<Value> {
        match self {
            Term::Const(c) => Some(c.clone()),
            Term::Var(name) => bindings.get(name).cloned(),
            Term::Wild => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Wild => write!(f, "*"),
        }
    }
}

/// The matching interpretation: an assignment of rule variables to
/// values, built up during template matching and consumed when
/// instantiating right-hand sides. Insertion order is irrelevant
/// (`BTreeMap` keeps iteration deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    map: BTreeMap<String, Value>,
    log: Vec<String>,
}

impl Bindings {
    /// The empty assignment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a variable.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// Bind a variable. Overwrites silently; unification (not this
    /// method) is responsible for consistency checks.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if self.map.insert(name.clone(), value).is_none() {
            self.log.push(name);
        }
    }

    /// `true` when no variable is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// A checkpoint for [`Bindings::rollback`]: unification of a
    /// multi-component template may bind some variables and then fail on
    /// a later component, in which case the paper's semantics require no
    /// match (and hence no residual bindings).
    #[must_use]
    pub fn checkpoint(&self) -> usize {
        self.log.len()
    }

    /// Undo every binding made after `checkpoint` was taken.
    pub fn rollback(&mut self, checkpoint: usize) {
        while self.log.len() > checkpoint {
            let name = self.log.pop().expect("log length checked");
            self.map.remove(&name);
        }
    }

    /// Iterate over `(variable, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Drop every binding (keeping the log's allocation), so one
    /// `Bindings` can serve as a scratch buffer across match attempts.
    pub fn clear(&mut self) {
        self.map.clear();
        self.log.clear();
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// An event template: the descriptor set of Appendix A with terms in
/// value positions. See [`EventDesc`] for the event-side meaning of each
/// variant.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateDesc {
    /// Spontaneous write `Ws(X, a, b)`. The paper's two-argument
    /// `Ws(X, b)` form is sugar for `Ws(X, *, b)`; `old` is `None` in
    /// that case.
    Ws {
        /// Item pattern being written.
        item: ItemPattern,
        /// Old-value term (`None` ⇢ wild-carded, the `Ws(X, b)` sugar).
        old: Option<Term>,
        /// New-value term.
        new: Term,
    },
    /// Generated write `W(X, b)`: the database performs `X ← b`.
    W {
        /// Item pattern being written.
        item: ItemPattern,
        /// Written-value term.
        value: Term,
    },
    /// Write request `WR(X, b)`: the database receives `X ← b` from the CM.
    Wr {
        /// Item pattern.
        item: ItemPattern,
        /// Requested-value term.
        value: Term,
    },
    /// Read request `RR(X)`: the database receives a read request.
    Rr {
        /// Item pattern.
        item: ItemPattern,
    },
    /// Read response `R(X, b)`: the CM receives the current value of `X`.
    R {
        /// Item pattern.
        item: ItemPattern,
        /// Value term.
        value: Term,
    },
    /// Notification `N(X, b)`: the CM learns that `X` now holds `b`.
    N {
        /// Item pattern.
        item: ItemPattern,
        /// Value term.
        value: Term,
    },
    /// Periodic event `P(p)`: occurs every `p` by definition.
    P {
        /// Period term (constant in every practical rule).
        period: Term,
    },
    /// Protocol-specific event `name(args…)`; the paper notes the
    /// descriptor set "can be expanded by adding new templates and their
    /// semantics" — the demarcation protocol's limit-change requests use
    /// this.
    Custom {
        /// Event name.
        name: String,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// The false template `𝓕`: matches no event, used as the RHS of
    /// prohibition interfaces such as *no spontaneous writes*.
    False,
}

impl TemplateDesc {
    /// Match an event descriptor against this template, extending
    /// `bindings` with the matching interpretation. On failure the
    /// bindings are rolled back to their state at entry.
    pub fn match_desc(&self, desc: &EventDesc, bindings: &mut Bindings) -> bool {
        let checkpoint = bindings.checkpoint();
        let ok = self.match_inner(desc, bindings);
        if !ok {
            bindings.rollback(checkpoint);
        }
        ok
    }

    fn match_inner(&self, desc: &EventDesc, bindings: &mut Bindings) -> bool {
        match (self, desc) {
            (
                TemplateDesc::Ws { item, old, new },
                EventDesc::Ws {
                    item: i,
                    old: o,
                    new: n,
                },
            ) => {
                item.match_item(i, bindings)
                    && match old {
                        None => true,
                        Some(term) => match o {
                            Some(ov) => term.unify(ov, bindings),
                            // An explicit old-value term cannot match a
                            // write whose old value is unrecorded.
                            None => matches!(term, Term::Wild),
                        },
                    }
                    && new.unify(n, bindings)
            }
            (TemplateDesc::W { item, value }, EventDesc::W { item: i, value: v }) => {
                item.match_item(i, bindings) && value.unify(v, bindings)
            }
            (TemplateDesc::Wr { item, value }, EventDesc::Wr { item: i, value: v }) => {
                item.match_item(i, bindings) && value.unify(v, bindings)
            }
            (TemplateDesc::Rr { item }, EventDesc::Rr { item: i }) => item.match_item(i, bindings),
            (TemplateDesc::R { item, value }, EventDesc::R { item: i, value: v }) => {
                item.match_item(i, bindings) && value.unify(v, bindings)
            }
            (TemplateDesc::N { item, value }, EventDesc::N { item: i, value: v }) => {
                item.match_item(i, bindings) && value.unify(v, bindings)
            }
            (TemplateDesc::P { period }, EventDesc::P { period: p }) => {
                period.unify(&Value::Int(p.as_millis() as i64), bindings)
            }
            (TemplateDesc::Custom { name, args }, EventDesc::Custom { name: n, args: a }) => {
                name == n
                    && args.len() == a.len()
                    && args.iter().zip(a).all(|(t, v)| t.unify(v, bindings))
            }
            (TemplateDesc::False, _) => false,
            _ => false,
        }
    }

    /// Instantiate the template into a ground event descriptor using
    /// `bindings`. Returns `None` when a needed variable is unbound or
    /// the template is `𝓕` (which denotes no event).
    #[must_use]
    pub fn instantiate(&self, bindings: &Bindings) -> Option<EventDesc> {
        match self {
            TemplateDesc::Ws { item, old, new } => Some(EventDesc::Ws {
                item: item.instantiate(bindings)?,
                old: match old {
                    Some(t) => Some(t.instantiate(bindings)?),
                    None => None,
                },
                new: new.instantiate(bindings)?,
            }),
            TemplateDesc::W { item, value } => Some(EventDesc::W {
                item: item.instantiate(bindings)?,
                value: value.instantiate(bindings)?,
            }),
            TemplateDesc::Wr { item, value } => Some(EventDesc::Wr {
                item: item.instantiate(bindings)?,
                value: value.instantiate(bindings)?,
            }),
            TemplateDesc::Rr { item } => Some(EventDesc::Rr {
                item: item.instantiate(bindings)?,
            }),
            TemplateDesc::R { item, value } => Some(EventDesc::R {
                item: item.instantiate(bindings)?,
                value: value.instantiate(bindings)?,
            }),
            TemplateDesc::N { item, value } => Some(EventDesc::N {
                item: item.instantiate(bindings)?,
                value: value.instantiate(bindings)?,
            }),
            TemplateDesc::P { period } => {
                let v = period.instantiate(bindings)?;
                let ms = v.as_int()?;
                (ms >= 0).then(|| EventDesc::P {
                    period: crate::time::SimDuration::from_millis(ms as u64),
                })
            }
            TemplateDesc::Custom { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.instantiate(bindings)?);
                }
                Some(EventDesc::Custom {
                    name: name.clone(),
                    args: vals,
                })
            }
            TemplateDesc::False => None,
        }
    }

    /// The item pattern this template concerns, if any (`P` and `𝓕` have
    /// none; `Custom` events are not item-addressed).
    #[must_use]
    pub fn item_pattern(&self) -> Option<&ItemPattern> {
        match self {
            TemplateDesc::Ws { item, .. }
            | TemplateDesc::W { item, .. }
            | TemplateDesc::Wr { item, .. }
            | TemplateDesc::Rr { item }
            | TemplateDesc::R { item, .. }
            | TemplateDesc::N { item, .. } => Some(item),
            _ => None,
        }
    }
}

impl fmt::Display for TemplateDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateDesc::Ws { item, old, new } => match old {
                Some(o) => write!(f, "Ws({item}, {o}, {new})"),
                None => write!(f, "Ws({item}, {new})"),
            },
            TemplateDesc::W { item, value } => write!(f, "W({item}, {value})"),
            TemplateDesc::Wr { item, value } => write!(f, "WR({item}, {value})"),
            TemplateDesc::Rr { item } => write!(f, "RR({item})"),
            TemplateDesc::R { item, value } => write!(f, "R({item}, {value})"),
            TemplateDesc::N { item, value } => write!(f, "N({item}, {value})"),
            TemplateDesc::P { period } => write!(f, "P({period})"),
            TemplateDesc::Custom { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            TemplateDesc::False => write!(f, "false"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;
    use crate::time::SimDuration;

    fn x() -> ItemPattern {
        ItemPattern::plain("X")
    }

    #[test]
    fn term_unification() {
        let mut b = Bindings::new();
        assert!(Term::Wild.unify(&Value::Int(1), &mut b));
        assert!(b.is_empty());
        assert!(Term::Const(Value::Int(1)).unify(&Value::Int(1), &mut b));
        assert!(!Term::Const(Value::Int(1)).unify(&Value::Int(2), &mut b));
        assert!(Term::var("v").unify(&Value::Int(7), &mut b));
        assert!(Term::var("v").unify(&Value::Int(7), &mut b));
        assert!(!Term::var("v").unify(&Value::Int(8), &mut b));
    }

    #[test]
    fn bindings_rollback() {
        let mut b = Bindings::new();
        b.bind("a", Value::Int(1));
        let cp = b.checkpoint();
        b.bind("c", Value::Int(3));
        b.bind("d", Value::Int(4));
        b.rollback(cp);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get("a"), Some(&Value::Int(1)));
        assert_eq!(b.get("c"), None);
    }

    #[test]
    fn notify_template_matches_and_binds() {
        let t = TemplateDesc::N {
            item: x(),
            value: Term::var("b"),
        };
        let e = EventDesc::N {
            item: ItemId::plain("X"),
            value: Value::Int(42),
        };
        let mut b = Bindings::new();
        assert!(t.match_desc(&e, &mut b));
        assert_eq!(b.get("b"), Some(&Value::Int(42)));
    }

    #[test]
    fn kind_mismatch_fails_cleanly() {
        let t = TemplateDesc::N {
            item: x(),
            value: Term::var("b"),
        };
        let e = EventDesc::W {
            item: ItemId::plain("X"),
            value: Value::Int(42),
        };
        let mut b = Bindings::new();
        assert!(!t.match_desc(&e, &mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn ws_sugar_ignores_old_value() {
        let t = TemplateDesc::Ws {
            item: x(),
            old: None,
            new: Term::var("b"),
        };
        let e = EventDesc::Ws {
            item: ItemId::plain("X"),
            old: Some(Value::Int(1)),
            new: Value::Int(2),
        };
        let mut b = Bindings::new();
        assert!(t.match_desc(&e, &mut b));
        assert_eq!(b.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn ws_three_arg_binds_old_and_new() {
        let t = TemplateDesc::Ws {
            item: x(),
            old: Some(Term::var("a")),
            new: Term::var("b"),
        };
        let e = EventDesc::Ws {
            item: ItemId::plain("X"),
            old: Some(Value::Int(1)),
            new: Value::Int(2),
        };
        let mut b = Bindings::new();
        assert!(t.match_desc(&e, &mut b));
        assert_eq!(b.get("a"), Some(&Value::Int(1)));
        assert_eq!(b.get("b"), Some(&Value::Int(2)));
        // Old value required but unrecorded: only `*` may match.
        let e2 = EventDesc::Ws {
            item: ItemId::plain("X"),
            old: None,
            new: Value::Int(2),
        };
        let mut b2 = Bindings::new();
        assert!(!t.match_desc(&e2, &mut b2));
        assert!(b2.is_empty());
    }

    #[test]
    fn false_template_never_matches() {
        let e = EventDesc::Ws {
            item: ItemId::plain("X"),
            old: None,
            new: Value::Int(2),
        };
        let mut b = Bindings::new();
        assert!(!TemplateDesc::False.match_desc(&e, &mut b));
        assert_eq!(TemplateDesc::False.instantiate(&b), None);
    }

    #[test]
    fn periodic_template() {
        let t = TemplateDesc::P {
            period: Term::Const(Value::Int(300_000)),
        };
        let e = EventDesc::P {
            period: SimDuration::from_secs(300),
        };
        let mut b = Bindings::new();
        assert!(t.match_desc(&e, &mut b));
        let wrong = EventDesc::P {
            period: SimDuration::from_secs(60),
        };
        assert!(!t.match_desc(&wrong, &mut b));
    }

    #[test]
    fn parameterized_round_trip() {
        // N(salary1(n), b) matched, then WR(salary2(n), b) instantiated —
        // the §4.2 strategy in miniature.
        let lhs = TemplateDesc::N {
            item: ItemPattern::with("salary1", [Term::var("n")]),
            value: Term::var("b"),
        };
        let rhs = TemplateDesc::Wr {
            item: ItemPattern::with("salary2", [Term::var("n")]),
            value: Term::var("b"),
        };
        let e = EventDesc::N {
            item: ItemId::with("salary1", [Value::from("e42")]),
            value: Value::Int(90_000),
        };
        let mut b = Bindings::new();
        assert!(lhs.match_desc(&e, &mut b));
        let out = rhs.instantiate(&b).expect("all variables bound");
        assert_eq!(
            out,
            EventDesc::Wr {
                item: ItemId::with("salary2", [Value::from("e42")]),
                value: Value::Int(90_000),
            }
        );
    }

    #[test]
    fn instantiate_fails_on_unbound() {
        let rhs = TemplateDesc::Wr {
            item: x(),
            value: Term::var("zz"),
        };
        assert_eq!(rhs.instantiate(&Bindings::new()), None);
    }

    #[test]
    fn custom_template() {
        let t = TemplateDesc::Custom {
            name: "LimitChangeReq".into(),
            args: vec![Term::var("amt")],
        };
        let e = EventDesc::Custom {
            name: "LimitChangeReq".into(),
            args: vec![Value::Int(50)],
        };
        let mut b = Bindings::new();
        assert!(t.match_desc(&e, &mut b));
        assert_eq!(b.get("amt"), Some(&Value::Int(50)));
        let other = EventDesc::Custom {
            name: "Other".into(),
            args: vec![Value::Int(50)],
        };
        assert!(!t.match_desc(&other, &mut b));
    }

    #[test]
    fn display_forms() {
        let t = TemplateDesc::N {
            item: ItemPattern::with("salary1", [Term::var("n")]),
            value: Term::var("b"),
        };
        assert_eq!(t.to_string(), "N(salary1(n), b)");
        assert_eq!(TemplateDesc::False.to_string(), "false");
        let ws = TemplateDesc::Ws {
            item: x(),
            old: Some(Term::var("a")),
            new: Term::var("b"),
        };
        assert_eq!(ws.to_string(), "Ws(X, a, b)");
    }
}
