//! Error type shared by the framework crates.

use std::fmt;

/// Errors arising in the core framework and its direct consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A rule RHS could not be instantiated because a variable is
    /// unbound by the matching interpretation.
    UnboundVariable(String),
    /// An operation referenced an item the target knows nothing about.
    UnknownItem(String),
    /// An operation referenced an unknown site.
    UnknownSite(u32),
    /// A malformed specification (details in the message).
    Spec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnboundVariable(v) => write!(f, "unbound rule variable `{v}`"),
            CoreError::UnknownItem(i) => write!(f, "unknown data item `{i}`"),
            CoreError::UnknownSite(s) => write!(f, "unknown site {s}"),
            CoreError::Spec(msg) => write!(f, "specification error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CoreError::UnboundVariable("b".into()).to_string(),
            "unbound rule variable `b`"
        );
        assert_eq!(CoreError::UnknownSite(3).to_string(), "unknown site 3");
    }
}
