//! # hcm-core — framework vocabulary for heterogeneous constraint management
//!
//! This crate defines the shared vocabulary of the toolkit described in
//! *"A Toolkit for Constraint Management in Heterogeneous Information
//! Systems"* (Chawathe, Garcia-Molina, Widom; ICDE 1996):
//!
//! * [`Value`] — the values data items take (integers, floats, strings,
//!   booleans, and the distinguished [`Value::Null`] meaning *absent*,
//!   which backs the paper's `E(X)` exists-predicate).
//! * [`SimTime`] / [`SimDuration`] — the global virtual clock the formal
//!   framework reasons in. The paper uses seconds; we use integer
//!   milliseconds so metric guarantees are checked exactly.
//! * [`SiteId`] — sites hosting databases and CM-Shells.
//! * [`ItemId`] / [`ItemPattern`] — (parameterized) data-item names such
//!   as `salary1(n)` from §3.1.1 of the paper.
//! * [`EventDesc`] / [`Event`] — event descriptors and the six-tuple
//!   events of Appendix A: `(time, desc, old, new, rule, trigger)`.
//! * [`TemplateDesc`] / [`Bindings`] — event templates and matching
//!   interpretations (`mi(E, 𝓔)` in the paper).
//! * [`Trace`] — recorded executions, the object the
//!   `hcm-checker` crate validates and evaluates guarantees over.
//!
//! Everything downstream — the rule language, the raw information
//! sources, the CM-Shell engine, the protocol library and the checkers —
//! builds on these types.

#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod intern;
pub mod item;
pub mod ordkey;
pub mod rule;
pub mod site;
pub mod sync;
pub mod template;
pub mod time;
pub mod trace;
pub mod value;

pub use error::CoreError;
pub use event::{Event, EventDesc, EventId};
pub use intern::Sym;
pub use item::{ItemId, ItemPattern};
pub use ordkey::OrderKey;
pub use rule::{RuleId, RuleRegistry};
pub use site::SiteId;
pub use sync::Shared;
pub use template::{Bindings, TemplateDesc, Term};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceRecorder};
pub use value::Value;
