//! Events — the six-tuples of Appendix A.
//!
//! The paper represents each event as
//! `E = (time, desc, old, new, rule, trigger)` where `old`/`new` are full
//! interpretations (system states) before and after the event. Storing a
//! full interpretation per event is redundant under the frame axiom
//! (Appendix property 2/3: only writes change state, and only for the
//! written item), so [`Event`] stores the *delta* — `old_value` of the
//! touched item — and full interpretations are reconstructed by
//! [`crate::trace::Trace`] on demand. The information content is
//! identical; `hcm-checker` verifies exactly the appendix properties.
//!
//! We additionally record the event's site explicitly (the paper: "each
//! event has a unique site"), which rule distribution and the in-order
//! property (property 7) require.

use crate::item::ItemId;
use crate::rule::RuleId;
use crate::site::SiteId;
use crate::time::{SimDuration, SimTime};
use crate::value::Value;
use std::fmt;

/// Identity of an event within a trace.
///
/// Two encodings share the `u64`:
///
/// * **plain** ids (`< 2^32`) are trace indexes in occurrence order —
///   the encoding hand-built traces use;
/// * **packed** ids (`>= 2^32`) carry an *origin* (the recording
///   component, conventionally its actor id) in the high bits and
///   that origin's private sequence number in the low bits. Packed
///   ids are what scoped `TraceRecorder`s mint: they identify an
///   event without encoding its position, so they are identical
///   across serial and sharded executions regardless of arrival
///   interleaving. Use `Trace::index_of` for positional ("precedes")
///   comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// A packed id: `origin`'s `seq`-th event.
    #[must_use]
    pub fn packed(origin: u32, seq: u32) -> EventId {
        EventId((u64::from(origin) + 1) << 32 | u64::from(seq))
    }

    /// The origin of a packed id; `None` for plain (index) ids.
    #[must_use]
    pub fn origin_of(id: EventId) -> Option<u32> {
        let hi = id.0 >> 32;
        (hi > 0).then(|| (hi - 1) as u32)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match EventId::origin_of(*self) {
            Some(origin) => write!(f, "e{origin}.{}", self.0 & 0xFFFF_FFFF),
            None => write!(f, "e{}", self.0),
        }
    }
}

/// The descriptor of an event — drawn from the paper's descriptor set
/// `{Ws, W, RR, N, WR, R, P}`, plus `Custom` (the appendix notes the set
/// "can be expanded by adding new templates and their semantics").
///
/// Existence (`E(X)` of §6.2) is encoded through values: a write of
/// [`Value::Null`] deletes the item, a write of anything else
/// (re-)creates it. No separate insert/delete descriptors are needed.
#[derive(Debug, Clone, PartialEq)]
pub enum EventDesc {
    /// A *spontaneous* write `X ← new` performed by a local application,
    /// independent of constraint management. `old` is the prior value if
    /// the database exposes it (the conditional-notify interface needs
    /// it), `None` otherwise.
    Ws {
        /// Item written.
        item: ItemId,
        /// Previous value, when known.
        old: Option<Value>,
        /// New value.
        new: Value,
    },
    /// A *generated* write: the database performs `X ← value` on the
    /// CM's behalf (the RHS of a write interface).
    W {
        /// Item written.
        item: ItemId,
        /// Value written.
        value: Value,
    },
    /// The database receives a write request `X ← value` from the CM.
    Wr {
        /// Item addressed.
        item: ItemId,
        /// Requested value.
        value: Value,
    },
    /// The database receives a read request for `X` from the CM.
    Rr {
        /// Item addressed.
        item: ItemId,
    },
    /// The CM receives the response to a read request: `X` held `value`.
    R {
        /// Item read.
        item: ItemId,
        /// Value observed.
        value: Value,
    },
    /// The CM receives a notification that `X` now holds `value`.
    N {
        /// Item concerned.
        item: ItemId,
        /// Notified value.
        value: Value,
    },
    /// A periodic event `P(p)` that occurs every `period` by definition.
    P {
        /// The period.
        period: SimDuration,
    },
    /// A protocol-specific event (e.g. the demarcation protocol's
    /// limit-change requests/grants).
    Custom {
        /// Event name.
        name: String,
        /// Ground arguments.
        args: Vec<Value>,
    },
}

impl EventDesc {
    /// The item this event addresses, if it is item-addressed.
    #[must_use]
    pub fn item(&self) -> Option<&ItemId> {
        match self {
            EventDesc::Ws { item, .. }
            | EventDesc::W { item, .. }
            | EventDesc::Wr { item, .. }
            | EventDesc::Rr { item }
            | EventDesc::R { item, .. }
            | EventDesc::N { item, .. } => Some(item),
            EventDesc::P { .. } | EventDesc::Custom { .. } => None,
        }
    }

    /// For write descriptors (`Ws`/`W`), the item and the value written.
    /// These are the only descriptors that change system state
    /// (Appendix property 2).
    #[must_use]
    pub fn write_effect(&self) -> Option<(&ItemId, &Value)> {
        match self {
            EventDesc::Ws { item, new, .. } => Some((item, new)),
            EventDesc::W { item, value } => Some((item, value)),
            _ => None,
        }
    }

    /// `true` for descriptors that are *spontaneous by nature*: `Ws`
    /// (application activity) and `P` (occurs by definition). Such
    /// events carry no generating rule or trigger (properties 4/5).
    #[must_use]
    pub fn is_spontaneous_kind(&self) -> bool {
        matches!(self, EventDesc::Ws { .. } | EventDesc::P { .. })
    }

    /// Short tag for metrics and display (`"Ws"`, `"N"`, …).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventDesc::Ws { .. } => "Ws",
            EventDesc::W { .. } => "W",
            EventDesc::Wr { .. } => "WR",
            EventDesc::Rr { .. } => "RR",
            EventDesc::R { .. } => "R",
            EventDesc::N { .. } => "N",
            EventDesc::P { .. } => "P",
            EventDesc::Custom { .. } => "Custom",
        }
    }
}

impl fmt::Display for EventDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventDesc::Ws { item, old, new } => match old {
                Some(o) => write!(f, "Ws({item}, {o}, {new})"),
                None => write!(f, "Ws({item}, {new})"),
            },
            EventDesc::W { item, value } => write!(f, "W({item}, {value})"),
            EventDesc::Wr { item, value } => write!(f, "WR({item}, {value})"),
            EventDesc::Rr { item } => write!(f, "RR({item})"),
            EventDesc::R { item, value } => write!(f, "R({item}, {value})"),
            EventDesc::N { item, value } => write!(f, "N({item}, {value})"),
            EventDesc::P { period } => write!(f, "P({period})"),
            EventDesc::Custom { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An event occurrence: the paper's six-tuple
/// `(time, desc, old, new, rule, trigger)` with the `old`/`new`
/// interpretations replaced by the per-item delta (see module docs) and
/// the site made explicit.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the trace (assigned by the recorder).
    pub id: EventId,
    /// Global virtual time of occurrence.
    pub time: SimTime,
    /// Site at which the event occurs.
    pub site: SiteId,
    /// The descriptor.
    pub desc: EventDesc,
    /// For write events: the value the written item held *just before*
    /// this event (the `old` interpretation restricted to the touched
    /// item). `None` for non-writes and for the first write of an item
    /// whose initial value is unspecified.
    pub old_value: Option<Value>,
    /// The rule whose firing produced this event; `None` for spontaneous
    /// events (Appendix property 4).
    pub rule: Option<RuleId>,
    /// The event whose occurrence fired that rule; `None` for
    /// spontaneous events.
    pub trigger: Option<EventId>,
}

impl Event {
    /// `true` when the event is spontaneous in the appendix sense: no
    /// generating rule and no trigger.
    #[must_use]
    pub fn is_spontaneous(&self) -> bool {
        self.rule.is_none() && self.trigger.is_none()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {} {}] {}", self.id, self.time, self.site, self.desc)?;
        if let Some(r) = self.rule {
            write!(f, " by {r}")?;
        }
        if let Some(t) = self.trigger {
            write!(f, " from {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item_x() -> ItemId {
        ItemId::plain("X")
    }

    #[test]
    fn write_effect_only_for_writes() {
        let ws = EventDesc::Ws {
            item: item_x(),
            old: None,
            new: Value::Int(2),
        };
        let w = EventDesc::W {
            item: item_x(),
            value: Value::Int(3),
        };
        let n = EventDesc::N {
            item: item_x(),
            value: Value::Int(4),
        };
        assert_eq!(ws.write_effect(), Some((&item_x(), &Value::Int(2))));
        assert_eq!(w.write_effect(), Some((&item_x(), &Value::Int(3))));
        assert_eq!(n.write_effect(), None);
        assert_eq!(
            EventDesc::P {
                period: SimDuration::from_secs(1)
            }
            .write_effect(),
            None
        );
    }

    #[test]
    fn spontaneity_of_kinds() {
        assert!(EventDesc::Ws {
            item: item_x(),
            old: None,
            new: Value::Int(1)
        }
        .is_spontaneous_kind());
        assert!(EventDesc::P {
            period: SimDuration::from_secs(1)
        }
        .is_spontaneous_kind());
        assert!(!EventDesc::N {
            item: item_x(),
            value: Value::Int(1)
        }
        .is_spontaneous_kind());
    }

    #[test]
    fn item_accessor() {
        let rr = EventDesc::Rr { item: item_x() };
        assert_eq!(rr.item(), Some(&item_x()));
        assert_eq!(
            EventDesc::P {
                period: SimDuration::from_secs(1)
            }
            .item(),
            None
        );
        let c = EventDesc::Custom {
            name: "Grant".into(),
            args: vec![],
        };
        assert_eq!(c.item(), None);
    }

    #[test]
    fn display() {
        let e = Event {
            id: EventId(7),
            time: SimTime::from_millis(1500),
            site: SiteId::new(2),
            desc: EventDesc::N {
                item: item_x(),
                value: Value::Int(9),
            },
            old_value: None,
            rule: Some(RuleId(3)),
            trigger: Some(EventId(5)),
        };
        assert_eq!(e.to_string(), "[e7 t=1.500s site2] N(X, 9) by r3 from e5");
        assert!(!e.is_spontaneous());
    }

    #[test]
    fn tags() {
        assert_eq!(EventDesc::Rr { item: item_x() }.tag(), "RR");
        assert_eq!(
            EventDesc::Custom {
                name: "x".into(),
                args: vec![]
            }
            .tag(),
            "Custom"
        );
    }
}
