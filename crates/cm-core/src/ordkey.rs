//! Ambient canonical-order keys for deterministic parallel recording.
//!
//! The sharded simulation (see `hcm-simkit`) processes each shard's
//! events on its own worker thread, so the *wall-clock* order in which
//! shared sinks — the trace, the span log, the metrics registry — see
//! their writes is scheduling-dependent. To keep every observable byte
//! identical to the serial execution, each worker installs the
//! **dispatch key** of the message it is currently processing as the
//! thread's ambient [`OrderKey`] base; every write a sink accepts while
//! a key is installed is tagged with `(base, sub)` where `sub` is a
//! per-dispatch counter shared by all sinks. At the end of a parallel
//! run each sink stably sorts its tagged suffix by the full key, which
//! reconstructs exactly the order a serial run would have produced:
//!
//! * the serial scheduler pops entries in `(time, phase, src, seq,
//!   minor)` order (see `hcm-simkit`'s `Scheduled`), so dispatch keys
//!   sort identically to serial processing order;
//! * within one dispatch, writes happen in program order, captured by
//!   `sub`.
//!
//! Serial runs never install a key, so every write takes the untagged
//! fast path and the sinks behave exactly as before.

use std::cell::Cell;

/// Canonical position of one sink write within a run. Ordering is the
/// serial processing order (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct OrderKey {
    /// Virtual time of the dispatch, in milliseconds.
    pub time: u64,
    /// Scheduling phase: 0 for `on_start` hooks (which a serial run
    /// executes before any dispatch), 1 for message/control dispatch.
    pub phase: u8,
    /// Sending actor of the dispatched message (`u32::MAX` for
    /// external injections and controls).
    pub src: u32,
    /// The sender's per-actor send sequence number.
    pub seq: u64,
    /// Tie-breaker for entries materialized *by* a dispatch (held
    /// messages replayed by a recovery control); 0 for normal sends.
    pub minor: u32,
    /// Per-dispatch write counter, shared across all sinks.
    pub sub: u32,
}

thread_local! {
    /// The installed dispatch-key base (`sub` unused) and the shared
    /// write counter for the current dispatch.
    static AMBIENT: Cell<Option<OrderKey>> = const { Cell::new(None) };
}

/// Install `base` as this thread's ambient key and reset the write
/// counter. Workers call this before every dispatch; `base.sub` is
/// ignored.
pub fn install(mut base: OrderKey) {
    base.sub = 0;
    AMBIENT.with(|c| c.set(Some(base)));
}

/// Clear the ambient key (end of a dispatch, or end of the parallel
/// run). Serial code never installs one, so its sinks never tag.
pub fn clear() {
    AMBIENT.with(|c| c.set(None));
}

/// When a key is installed, return it with the next `sub` value
/// (incrementing the shared counter); `None` in serial contexts.
#[must_use]
pub fn next() -> Option<OrderKey> {
    AMBIENT.with(|c| {
        let mut k = c.get()?;
        let out = k;
        k.sub += 1;
        c.set(Some(k));
        Some(out)
    })
}

/// Whether an ambient key is currently installed.
#[must_use]
pub fn active() -> bool {
    AMBIENT.with(|c| c.get().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_context_yields_no_keys() {
        clear();
        assert!(!active());
        assert_eq!(next(), None);
    }

    #[test]
    fn sub_counter_increments_per_take() {
        install(OrderKey {
            time: 5,
            phase: 1,
            src: 2,
            seq: 9,
            minor: 0,
            sub: 77, // ignored
        });
        let a = next().unwrap();
        let b = next().unwrap();
        assert_eq!((a.time, a.src, a.seq, a.sub), (5, 2, 9, 0));
        assert_eq!(b.sub, 1);
        clear();
        assert_eq!(next(), None);
    }

    #[test]
    fn key_order_matches_serial_scheduler_order() {
        let k = |time, phase, src, seq, minor, sub| OrderKey {
            time,
            phase,
            src,
            seq,
            minor,
            sub,
        };
        // on_start before any same-time dispatch; then (src, seq,
        // minor, sub) lexicographically; time dominates everything.
        let mut v = vec![
            k(1, 1, 0, 1, 0, 0),
            k(0, 1, 9, 1, 0, 0),
            k(0, 1, 2, 4, 1, 0),
            k(0, 1, 2, 4, 0, 3),
            k(0, 0, 5, 0, 0, 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                k(0, 0, 5, 0, 0, 0),
                k(0, 1, 2, 4, 0, 3),
                k(0, 1, 2, 4, 1, 0),
                k(0, 1, 9, 1, 0, 0),
                k(1, 1, 0, 1, 0, 0),
            ]
        );
    }
}
