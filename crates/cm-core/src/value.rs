//! Values taken by data items.
//!
//! The paper is agnostic about the domain of data items ("we do not fix a
//! specific granularity for data items"); in practice its examples use
//! numbers (salaries, balances, limits) and strings (phone numbers,
//! names). [`Value`] covers those plus booleans (for auxiliary CM data
//! such as the `Flag` item of §6.3) and a distinguished [`Value::Null`]
//! denoting *absence*: the exists-predicate `E(X)` of §6.2 is true
//! exactly when an item's value is non-null.

use std::cmp::Ordering;
use std::fmt;

/// A value stored in a data item, carried by an event, or bound to a rule
/// parameter.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absence of a value. A data item whose value is `Null` does not
    /// exist in its database (`E(X)` is false).
    Null,
    /// Boolean, used mainly for auxiliary CM data (`Flag` in §6.3).
    Bool(bool),
    /// 64-bit integer (salaries, balances, demarcation limits…).
    Int(i64),
    /// Double-precision float (used by the conditional-notify example,
    /// `|b − a| > 0.1·a`).
    Float(f64),
    /// UTF-8 string (phone numbers, employee names…).
    Str(String),
}

impl Value {
    /// `true` when the value is anything other than [`Value::Null`]；
    /// this is the paper's `E(X)` exists-predicate applied to a value.
    #[must_use]
    pub fn exists(&self) -> bool {
        !matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Integers widen to `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric addition; integers stay integers, mixed arithmetic widens
    /// to float. Returns `None` for non-numeric operands.
    #[must_use]
    pub fn add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_add(*b))),
            _ => Some(Value::Float(self.as_f64()? + other.as_f64()?)),
        }
    }

    /// Numeric subtraction with the same widening rules as [`Value::add`].
    #[must_use]
    pub fn sub(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_sub(*b))),
            _ => Some(Value::Float(self.as_f64()? - other.as_f64()?)),
        }
    }

    /// Numeric multiplication with the same widening rules as [`Value::add`].
    #[must_use]
    pub fn mul(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_mul(*b))),
            _ => Some(Value::Float(self.as_f64()? * other.as_f64()?)),
        }
    }

    /// Absolute value of a numeric value.
    #[must_use]
    pub fn abs(&self) -> Option<Value> {
        match self {
            Value::Int(i) => Some(Value::Int(i.wrapping_abs())),
            Value::Float(f) => Some(Value::Float(f.abs())),
            _ => None,
        }
    }

    /// Ordering comparison used by conditions such as `X <= Y`. Numeric
    /// values compare numerically across `Int`/`Float`; strings compare
    /// lexicographically; other cross-type comparisons are undefined.
    #[must_use]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => Some(self.as_f64()?.total_cmp(&other.as_f64()?)),
        }
    }
}

/// Equality treats `Int(2)` and `Float(2.0)` as equal (a copy constraint
/// between a relational column and a flat-file field should not fail on
/// representation); NaN equals NaN so that [`Value`] can key maps.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

/// A *total* order across all values, used only where a deterministic
/// arrangement is needed (sorted item lists, map keys). Cross-type
/// comparisons order by variant (`Null < Bool < numeric < Str`); for
/// semantic comparisons inside conditions use [`Value::compare`], which
/// refuses cross-type comparisons instead of inventing them.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            _ if rank(self) == 2 && rank(other) == 2 => {
                // Mixed numeric; both as_f64 succeed for Int/Float.
                self.as_f64()
                    .expect("numeric")
                    .total_cmp(&other.as_f64().expect("numeric"))
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and integral floats must hash alike because they
            // compare equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_does_not_exist() {
        assert!(!Value::Null.exists());
        assert!(Value::Int(0).exists());
        assert!(Value::Str(String::new()).exists());
    }

    #[test]
    fn int_float_cross_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn nan_is_self_equal() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn arithmetic_widens() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(Value::Str("x".into()).add(&Value::Int(1)), None);
    }

    #[test]
    fn subtraction_and_abs() {
        assert_eq!(Value::Int(2).sub(&Value::Int(5)), Some(Value::Int(-3)));
        assert_eq!(Value::Int(-3).abs(), Some(Value::Int(3)));
        assert_eq!(Value::Float(-1.5).abs(), Some(Value::Float(1.5)));
        assert_eq!(Value::Null.abs(), None);
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Less));
        assert_eq!(Value::Int(3).compare(&Value::Float(2.5)), Some(Greater));
        assert_eq!(
            Value::Str("abc".into()).compare(&Value::Str("abd".into())),
            Some(Less)
        );
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
    }
}
