//! Data-item names.
//!
//! The paper deliberately leaves the granularity of a "data item" open —
//! a single object, a tuple, a whole relation — and supports
//! *parameterized* names such as `phone(n)` denoting the phone number of
//! employee `n` (§3.1.1). [`ItemId`] is a concrete (fully ground) name:
//! a base identifier plus zero or more parameter values. [`ItemPattern`]
//! is its template counterpart, where parameters may be variables or
//! wild-cards, and is what interface and strategy rules mention.

use crate::intern::Sym;
use crate::template::{Bindings, Term};
use crate::value::Value;
use std::fmt;

/// A ground data-item name: `base(p1, …, pk)`. `salary1("e42")` and
/// `balance(17)` are items; `X` (no parameters) is an item too.
///
/// The base name is an interned [`Sym`]: equality, hashing and routing
/// on items are O(1) on a `u32` symbol, and the string is only touched
/// when formatting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId {
    /// The interned base name, e.g. `salary1`.
    pub base: Sym,
    /// Ground parameter values, empty for unparameterized items.
    pub params: Vec<Value>,
}

impl ItemId {
    /// An unparameterized item, e.g. `ItemId::plain("X")`.
    #[must_use]
    pub fn plain(base: impl Into<Sym>) -> Self {
        ItemId {
            base: base.into(),
            params: Vec::new(),
        }
    }

    /// A parameterized item, e.g. `ItemId::with("salary1", ["e42"])`.
    #[must_use]
    pub fn with(base: impl Into<Sym>, params: impl IntoIterator<Item = Value>) -> Self {
        ItemId {
            base: base.into(),
            params: params.into_iter().collect(),
        }
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A data-item pattern as written in rules: `salary1(n)` where `n` is a
/// rule variable, `phone(*)` with a wild-card, or the ground `X`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPattern {
    /// The interned base name; must match the item's base exactly.
    pub base: Sym,
    /// Parameter terms (variables, constants, wild-cards).
    pub params: Vec<Term>,
}

impl ItemPattern {
    /// An unparameterized pattern.
    #[must_use]
    pub fn plain(base: impl Into<Sym>) -> Self {
        ItemPattern {
            base: base.into(),
            params: Vec::new(),
        }
    }

    /// A parameterized pattern.
    #[must_use]
    pub fn with(base: impl Into<Sym>, params: impl IntoIterator<Item = Term>) -> Self {
        ItemPattern {
            base: base.into(),
            params: params.into_iter().collect(),
        }
    }

    /// Try to match a ground item against this pattern, extending
    /// `bindings` (the matching interpretation). Fails without modifying
    /// the bindings' observable state if the base differs, the arity
    /// differs, or a variable would need two different values.
    pub fn match_item(&self, item: &ItemId, bindings: &mut Bindings) -> bool {
        if self.base != item.base || self.params.len() != item.params.len() {
            return false;
        }
        let checkpoint = bindings.checkpoint();
        for (term, value) in self.params.iter().zip(&item.params) {
            if !term.unify(value, bindings) {
                bindings.rollback(checkpoint);
                return false;
            }
        }
        true
    }

    /// Instantiate the pattern into a ground [`ItemId`] using `bindings`.
    /// Returns `None` if some variable is unbound.
    #[must_use]
    pub fn instantiate(&self, bindings: &Bindings) -> Option<ItemId> {
        let mut params = Vec::with_capacity(self.params.len());
        for t in &self.params {
            params.push(t.instantiate(bindings)?);
        }
        Some(ItemId {
            base: self.base,
            params,
        })
    }

    /// `true` when the pattern contains no variables or wild-cards.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.params.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

impl fmt::Display for ItemPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl From<ItemId> for ItemPattern {
    fn from(item: ItemId) -> Self {
        ItemPattern {
            base: item.base,
            params: item.params.into_iter().map(Term::Const).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ItemId::plain("X").to_string(), "X");
        assert_eq!(
            ItemId::with("salary1", [Value::from("e42")]).to_string(),
            "salary1(\"e42\")"
        );
        let pat = ItemPattern::with("phone", [Term::var("n")]);
        assert_eq!(pat.to_string(), "phone(n)");
    }

    #[test]
    fn match_binds_variables() {
        let pat = ItemPattern::with("salary1", [Term::var("n")]);
        let item = ItemId::with("salary1", [Value::from("e42")]);
        let mut b = Bindings::new();
        assert!(pat.match_item(&item, &mut b));
        assert_eq!(b.get("n"), Some(&Value::from("e42")));
    }

    #[test]
    fn match_respects_existing_bindings() {
        let pat = ItemPattern::with("salary1", [Term::var("n")]);
        let item = ItemId::with("salary1", [Value::from("e42")]);
        let mut b = Bindings::new();
        b.bind("n", Value::from("e99"));
        assert!(!pat.match_item(&item, &mut b));
        // Unchanged after failure.
        assert_eq!(b.get("n"), Some(&Value::from("e99")));
    }

    #[test]
    fn match_rejects_base_and_arity_mismatch() {
        let mut b = Bindings::new();
        let pat = ItemPattern::with("salary1", [Term::var("n")]);
        assert!(!pat.match_item(&ItemId::with("salary2", [Value::from("e1")]), &mut b));
        assert!(!pat.match_item(&ItemId::plain("salary1"), &mut b));
    }

    #[test]
    fn wildcard_matches_anything_without_binding() {
        let pat = ItemPattern::with("phone", [Term::Wild]);
        let mut b = Bindings::new();
        assert!(pat.match_item(&ItemId::with("phone", [Value::Int(5)]), &mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn instantiate_round_trips() {
        let pat = ItemPattern::with("salary2", [Term::var("n")]);
        let mut b = Bindings::new();
        b.bind("n", Value::from("e42"));
        assert_eq!(
            pat.instantiate(&b),
            Some(ItemId::with("salary2", [Value::from("e42")]))
        );
        let unbound = ItemPattern::with("salary2", [Term::var("m")]);
        assert_eq!(unbound.instantiate(&b), None);
    }

    #[test]
    fn failed_partial_match_rolls_back() {
        // First param binds n, second param contradicts it: n must be
        // rolled back.
        let pat = ItemPattern::with("pair", [Term::var("n"), Term::var("n")]);
        let item = ItemId::with("pair", [Value::Int(1), Value::Int(2)]);
        let mut b = Bindings::new();
        assert!(!pat.match_item(&item, &mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn groundness() {
        assert!(ItemPattern::plain("X").is_ground());
        assert!(ItemPattern::with("f", [Term::Const(Value::Int(1))]).is_ground());
        assert!(!ItemPattern::with("f", [Term::var("x")]).is_ground());
        assert!(!ItemPattern::with("f", [Term::Wild]).is_ground());
    }
}
