//! Executions (traces) and their recording.
//!
//! Appendix A defines the semantics of the rule language over
//! *executions* — time-ordered sequences of events. [`Trace`] is a
//! recorded execution plus the query machinery the guarantee evaluator
//! and the validity checker need:
//!
//! * per-item **timelines** (step functions of value over time,
//!   reconstructing the appendix's full `old`/`new` interpretations);
//! * template scans;
//! * the quiescence horizon used for finite-trace evaluation of
//!   liveness-flavoured guarantees (see `hcm-checker`).
//!
//! Queries are index-backed: [`Trace::push`] incrementally maintains a
//! per-item write index, a per-descriptor-kind event index, and the
//! item set, so [`Trace::value_at`] is a binary search over one item's
//! writes, [`Trace::matching`] only visits events of the template's
//! kind, and [`Trace::items`] is a walk over a cached sorted set. When
//! a trace violates time order (validity-checker tests seed such
//! traces deliberately — appendix property 1 is *checked*, not
//! enforced), `value_at` falls back to the original linear scan whose
//! semantics the binary search would not preserve.
//!
//! [`TraceRecorder`] is the cheaply-clonable handle the simulation
//! components append through.

use crate::event::{Event, EventDesc, EventId};
use crate::item::ItemId;
use crate::ordkey::{self, OrderKey};
use crate::rule::RuleId;
use crate::site::SiteId;
use crate::template::{Bindings, TemplateDesc};
use crate::time::SimTime;
use crate::value::Value;
use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// How many index-downgrading pushes [`Trace`] keeps details for (the
/// counter keeps counting past the cap).
const DOWNGRADE_LOG_CAP: usize = 8;

/// Discriminant used to bucket events by descriptor kind so template
/// scans skip events that cannot match. `TemplateDesc::False` maps to
/// no kind (it matches nothing).
fn desc_kind(desc: &EventDesc) -> u8 {
    match desc {
        EventDesc::Ws { .. } => 0,
        EventDesc::W { .. } => 1,
        EventDesc::Wr { .. } => 2,
        EventDesc::Rr { .. } => 3,
        EventDesc::R { .. } => 4,
        EventDesc::N { .. } => 5,
        EventDesc::P { .. } => 6,
        EventDesc::Custom { .. } => 7,
    }
}

fn template_kind(template: &TemplateDesc) -> Option<u8> {
    match template {
        TemplateDesc::Ws { .. } => Some(0),
        TemplateDesc::W { .. } => Some(1),
        TemplateDesc::Wr { .. } => Some(2),
        TemplateDesc::Rr { .. } => Some(3),
        TemplateDesc::R { .. } => Some(4),
        TemplateDesc::N { .. } => Some(5),
        TemplateDesc::P { .. } => Some(6),
        TemplateDesc::Custom { .. } => Some(7),
        TemplateDesc::False => None,
    }
}

/// A recorded execution: events in occurrence order, plus the initial
/// values of data items (the initial interpretation).
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    initial: HashMap<ItemId, Value>,
    /// Event indexes (into `events`) of write-effect events, per item,
    /// in push order.
    writes: HashMap<ItemId, Vec<u32>>,
    /// Event indexes per descriptor kind, in push order.
    by_kind: HashMap<u8, Vec<u32>>,
    /// Every item mentioned by any event or the initial interpretation.
    item_set: BTreeSet<ItemId>,
    /// Time of the latest push, for order tracking.
    last_time: SimTime,
    /// Set when some push went backwards in time; index-backed
    /// `value_at` is only used while this is `false`.
    unordered: bool,
    /// Scoped (origin-packed) event id → index in `events`. Plain
    /// recorder ids *are* indexes and skip this map.
    by_id: HashMap<u64, u32>,
    /// Ambient order keys of the tagged tail `events[tail_start..]`
    /// accumulated during a parallel run; drained by
    /// [`Trace::finalize_order`].
    tail_keys: Vec<OrderKey>,
    /// Length of the canonical (already ordered) prefix when the first
    /// tagged push of the current parallel run arrived.
    tail_start: usize,
    /// How many pushes arrived with a time before `last_time`, silently
    /// downgrading indexed queries to linear scans.
    downgrades: u64,
    /// Details of the first few downgrading pushes:
    /// `(push time, previous last_time, site of the push)`.
    downgrade_log: Vec<(SimTime, SimTime, SiteId)>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            events: Vec::new(),
            initial: HashMap::new(),
            writes: HashMap::new(),
            by_kind: HashMap::new(),
            item_set: BTreeSet::new(),
            last_time: SimTime::ZERO,
            unordered: false,
            by_id: HashMap::new(),
            tail_keys: Vec::new(),
            tail_start: 0,
            downgrades: 0,
            downgrade_log: Vec::new(),
        }
    }
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the initial value of an item (before any event). Items
    /// never mentioned are *underspecified*: reads return `None` and the
    /// checker treats them as unconstrained, matching the appendix's
    /// null-mapping interpretations.
    pub fn set_initial(&mut self, item: ItemId, value: Value) {
        if !self.item_set.contains(&item) {
            self.item_set.insert(item.clone());
        }
        self.initial.insert(item, value);
    }

    /// Initial value of an item, if specified.
    #[must_use]
    pub fn initial(&self, item: &ItemId) -> Option<&Value> {
        self.initial.get(item)
    }

    /// Append an event, assigning its [`EventId`]. Events are expected
    /// in nondecreasing time order; the invariant is *not* enforced
    /// here — appendix property 1 is one of the things the validity
    /// checker verifies, and its tests need to seed violations. An
    /// out-of-order push only downgrades queries to their linear
    /// fallbacks; nothing is lost.
    pub fn push(
        &mut self,
        time: SimTime,
        site: SiteId,
        desc: EventDesc,
        old_value: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        let id = EventId(self.events.len() as u64);
        self.push_with_id(id, time, site, desc, old_value, rule, trigger);
        id
    }

    /// Append an event under a caller-chosen id (scoped recorders mint
    /// origin-packed ids so the id is independent of arrival order).
    /// When an ambient [`OrderKey`] is installed (parallel run), the
    /// push is tagged for the end-of-run canonical re-sort and order
    /// tracking is deferred to [`Trace::finalize_order`].
    #[allow(clippy::too_many_arguments)]
    fn push_with_id(
        &mut self,
        id: EventId,
        time: SimTime,
        site: SiteId,
        desc: EventDesc,
        old_value: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) {
        if let Some(key) = ordkey::next() {
            if self.tail_keys.is_empty() {
                self.tail_start = self.events.len();
            }
            self.tail_keys.push(key);
        } else {
            self.note_order(time, site);
        }
        let idx = u32::try_from(self.events.len()).expect("trace too long for u32 index");
        if EventId::origin_of(id).is_some() {
            self.by_id.insert(id.0, idx);
        }
        if let Some(item) = desc.item() {
            if !self.item_set.contains(item) {
                self.item_set.insert(item.clone());
            }
            if desc.write_effect().is_some() {
                match self.writes.get_mut(item) {
                    Some(v) => v.push(idx),
                    None => {
                        self.writes.insert(item.clone(), vec![idx]);
                    }
                }
            }
        }
        self.by_kind.entry(desc_kind(&desc)).or_default().push(idx);
        self.events.push(Event {
            id,
            time,
            site,
            desc,
            old_value,
            rule,
            trigger,
        });
    }

    /// Track push time order, counting index downgrades (an
    /// out-of-order push demotes `value_at` and friends to their
    /// linear fallbacks — silent until someone looks at
    /// [`Trace::index_downgrades`]).
    fn note_order(&mut self, time: SimTime, site: SiteId) {
        if time < self.last_time {
            self.unordered = true;
            self.downgrades += 1;
            if self.downgrade_log.len() < DOWNGRADE_LOG_CAP {
                self.downgrade_log.push((time, self.last_time, site));
            }
        } else {
            self.last_time = time;
        }
    }

    /// How many pushes went backwards in time (each one kept the trace
    /// on the linear-scan fallback path). Always 0 for simulation
    /// traces; nonzero signals either a deliberately out-of-order test
    /// trace or a perf regression worth surfacing.
    #[must_use]
    pub fn index_downgrades(&self) -> u64 {
        self.downgrades
    }

    /// Details of the first few downgrading pushes:
    /// `(push time, preceding last_time, site of the offending push)`.
    #[must_use]
    pub fn downgrade_log(&self) -> &[(SimTime, SimTime, SiteId)] {
        &self.downgrade_log
    }

    /// Restore canonical (serial) order after a parallel run: stably
    /// sort the tagged tail by its ambient order keys, then rebuild
    /// every derived index and the order-tracking state. No-op when
    /// nothing was tagged (serial runs).
    pub fn finalize_order(&mut self) {
        if self.tail_keys.is_empty() {
            return;
        }
        assert_eq!(
            self.tail_start + self.tail_keys.len(),
            self.events.len(),
            "untagged pushes interleaved with a parallel run"
        );
        let tail: Vec<Event> = self.events.split_off(self.tail_start);
        let mut keyed: Vec<(OrderKey, Event)> = std::mem::take(&mut self.tail_keys)
            .into_iter()
            .zip(tail)
            .collect();
        keyed.sort_by_key(|k| k.0);
        self.events.extend(keyed.into_iter().map(|(_, e)| e));
        self.rebuild_indexes();
    }

    /// Rebuild `writes`, `by_kind`, `by_id` and the order-tracking
    /// state from the event list (used after a canonical re-sort).
    fn rebuild_indexes(&mut self) {
        self.writes.clear();
        self.by_kind.clear();
        self.by_id.clear();
        self.last_time = SimTime::ZERO;
        self.unordered = false;
        self.downgrades = 0;
        self.downgrade_log.clear();
        for i in 0..self.events.len() {
            let (id, time, site) = {
                let e = &self.events[i];
                (e.id, e.time, e.site)
            };
            self.note_order(time, site);
            let idx = u32::try_from(i).expect("trace too long for u32 index");
            if EventId::origin_of(id).is_some() {
                self.by_id.insert(id.0, idx);
            }
            let e = &self.events[i];
            if let Some(item) = e.desc.item() {
                if e.desc.write_effect().is_some() {
                    self.writes.entry(item.clone()).or_default().push(idx);
                }
            }
            self.by_kind
                .entry(desc_kind(&e.desc))
                .or_default()
                .push(idx);
        }
    }

    /// All events in occurrence order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Event by id. Plain ids are indexes; scoped (origin-packed) ids
    /// go through the id map.
    #[must_use]
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.index_of(id).map(|i| &self.events[i])
    }

    /// Position of an event in the trace (occurrence order). This is
    /// the "precedes" order of Appendix A — scoped ids carry no
    /// positional information of their own.
    #[must_use]
    pub fn index_of(&self, id: EventId) -> Option<usize> {
        if EventId::origin_of(id).is_some() {
            return self.by_id.get(&id.0).map(|&i| i as usize);
        }
        let i = id.0 as usize;
        self.events.get(i).is_some().then_some(i)
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event, or `SimTime::ZERO` for an empty trace.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |e| e.time)
    }

    /// `true` while every push has been in nondecreasing time order.
    #[must_use]
    pub fn is_time_ordered(&self) -> bool {
        !self.unordered
    }

    /// Events matching `template`, with the matching interpretation for
    /// each. Only events of the template's descriptor kind are visited.
    pub fn matching<'a>(
        &'a self,
        template: &'a TemplateDesc,
    ) -> impl Iterator<Item = (&'a Event, Bindings)> + 'a {
        let idxs: &[u32] = template_kind(template)
            .and_then(|k| self.by_kind.get(&k))
            .map_or(&[][..], |v| v.as_slice());
        idxs.iter().filter_map(move |&i| {
            let e = &self.events[i as usize];
            let mut b = Bindings::new();
            template.match_desc(&e.desc, &mut b).then_some((e, b))
        })
    }

    /// The value of `item` at time `t` — i.e. the interpretation the
    /// appendix would assign at `t`, restricted to `item`. Writes take
    /// effect *at* their event time (the `new` interpretation holds from
    /// the instant of the event onward; when several events share an
    /// instant, the last one wins, consistent with the trace order).
    /// Returns `None` when the item is underspecified at `t`.
    ///
    /// Binary search over the item's write index on time-ordered traces;
    /// the original linear scan (which stops at the first event past `t`)
    /// on traces that violate time order, preserving its semantics.
    #[must_use]
    pub fn value_at(&self, item: &ItemId, t: SimTime) -> Option<Value> {
        if self.unordered {
            return self.value_at_linear(item, t);
        }
        if let Some(idxs) = self.writes.get(item) {
            // Within one item the write times are nondecreasing and in
            // push order, so the last write with `time <= t` is both the
            // binary-search answer and the same-instant winner.
            let n = idxs.partition_point(|&i| self.events[i as usize].time <= t);
            if n > 0 {
                let e = &self.events[idxs[n - 1] as usize];
                return e.desc.write_effect().map(|(_, v)| v.clone());
            }
        }
        self.initial.get(item).cloned()
    }

    /// The pre-index `value_at`: scan events in order, stopping at the
    /// first event later than `t`. On an out-of-order trace this is the
    /// defined semantics (later-pushed earlier-timed writes are not
    /// seen), so it stays the fallback.
    fn value_at_linear(&self, item: &ItemId, t: SimTime) -> Option<Value> {
        let mut current = self.initial.get(item).cloned();
        for e in &self.events {
            if e.time > t {
                break;
            }
            if let Some((i, v)) = e.desc.write_effect() {
                if i == item {
                    current = Some(v.clone());
                }
            }
        }
        current
    }

    /// The full timeline of `item`: `(time, value)` change points, one
    /// per write, preceded by the initial value at `SimTime::ZERO` when
    /// specified. Consecutive equal values are retained (a rewrite of
    /// the same value is still a write event). Built from the per-item
    /// write index (push order = occurrence order), not a full scan.
    #[must_use]
    pub fn timeline(&self, item: &ItemId) -> Timeline {
        let mut steps = Vec::new();
        if let Some(v) = self.initial.get(item) {
            steps.push((SimTime::ZERO, v.clone()));
        }
        if let Some(idxs) = self.writes.get(item) {
            steps.reserve(idxs.len());
            for &i in idxs {
                let e = &self.events[i as usize];
                if let Some((_, v)) = e.desc.write_effect() {
                    steps.push((e.time, v.clone()));
                }
            }
        }
        let sorted = steps.windows(2).all(|w| w[0].0 <= w[1].0);
        Timeline { steps, sorted }
    }

    /// Every item mentioned by any event or by the initial
    /// interpretation, deduplicated, in deterministic (sorted) order.
    /// Iterates the cached item set — no per-call cloning.
    pub fn items(&self) -> impl Iterator<Item = &ItemId> + '_ {
        self.item_set.iter()
    }

    /// The *salient instants* of the trace: every event time. Item
    /// values are constant between consecutive salient instants, so
    /// quantification over continuous time reduces to these points plus
    /// one representative inside each open interval (`hcm-checker`
    /// builds on this).
    #[must_use]
    pub fn salient_times(&self) -> Vec<SimTime> {
        if self.unordered {
            let mut ts: Vec<SimTime> = self.events.iter().map(|e| e.time).collect();
            ts.push(SimTime::ZERO);
            ts.sort();
            ts.dedup();
            return ts;
        }
        // Already nondecreasing: dedup on the fly, no sort.
        let mut ts = Vec::with_capacity(self.events.len() + 1);
        ts.push(SimTime::ZERO);
        for e in &self.events {
            if *ts.last().expect("nonempty") != e.time {
                ts.push(e.time);
            }
        }
        ts
    }

    /// Count events per descriptor tag — cheap instrumentation for the
    /// message-reduction experiments (E8/E9).
    #[must_use]
    pub fn tag_counts(&self) -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for e in &self.events {
            *m.entry(e.desc.tag()).or_insert(0) += 1;
        }
        m
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Step function of one item's value over time.
#[derive(Debug, Clone)]
pub struct Timeline {
    steps: Vec<(SimTime, Value)>,
    /// Change points are in nondecreasing time order (always true for
    /// time-ordered traces); enables binary search in [`Timeline::at`].
    sorted: bool,
}

impl Timeline {
    /// The change points `(time, value)` in time order.
    #[must_use]
    pub fn steps(&self) -> &[(SimTime, Value)] {
        &self.steps
    }

    /// Value at time `t` (last change point at or before `t`). Binary
    /// search when the steps are time-ordered; the original prefix scan
    /// otherwise.
    #[must_use]
    pub fn at(&self, t: SimTime) -> Option<&Value> {
        if self.sorted {
            let n = self.steps.partition_point(|(time, _)| *time <= t);
            return n.checked_sub(1).map(|i| &self.steps[i].1);
        }
        self.steps
            .iter()
            .take_while(|(time, _)| *time <= t)
            .last()
            .map(|(_, v)| v)
    }

    /// Distinct values taken, in first-occurrence order.
    #[must_use]
    pub fn values_taken(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for (_, v) in &self.steps {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
        seen
    }
}

/// Shared, cheaply clonable handle to a trace under construction
/// (`Arc<Mutex<…>>` — the sharded executor appends from worker
/// threads); the recorded [`Trace`] is extracted once at the end.
///
/// A recorder is either *unscoped* (ids are trace indexes — the
/// hand-built-trace path) or *scoped* to an origin via
/// [`TraceRecorder::scoped`]: each simulation component records
/// through its own scoped handle, which mints origin-packed
/// [`EventId`]s from a private counter so ids are identical whether
/// the run was serial or sharded.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Arc<Mutex<Trace>>,
    /// `origin + 1` of a scoped recorder; 0 for unscoped.
    origin: u32,
    /// Next local sequence number (scoped recorders only).
    next_seq: Cell<u32>,
}

impl Clone for TraceRecorder {
    fn clone(&self) -> Self {
        TraceRecorder {
            inner: Arc::clone(&self.inner),
            origin: self.origin,
            next_seq: Cell::new(self.next_seq.get()),
        }
    }
}

impl TraceRecorder {
    /// A recorder over an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle on the same trace that mints origin-packed event ids
    /// for `origin` (one scoped recorder per recording component; the
    /// component's actor id is the conventional origin). The returned
    /// handle owns the origin's id counter — clone it only to move it.
    #[must_use]
    pub fn scoped(&self, origin: u32) -> TraceRecorder {
        assert!(origin < u32::MAX, "origin out of range");
        TraceRecorder {
            inner: Arc::clone(&self.inner),
            origin: origin + 1,
            next_seq: Cell::new(0),
        }
    }

    /// Record an initial item value. See [`Trace::set_initial`].
    pub fn set_initial(&self, item: ItemId, value: Value) {
        self.lock().set_initial(item, value);
    }

    /// Append an event. See [`Trace::push`]. Scoped recorders mint the
    /// id from their origin counter; unscoped recorders use the trace
    /// index.
    pub fn record(
        &self,
        time: SimTime,
        site: SiteId,
        desc: EventDesc,
        old_value: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        let mut t = self.lock();
        if self.origin == 0 {
            return t.push(time, site, desc, old_value, rule, trigger);
        }
        let seq = self.next_seq.get();
        self.next_seq
            .set(seq.checked_add(1).expect("per-origin event ids exhausted"));
        let id = EventId::packed(self.origin - 1, seq);
        t.push_with_id(id, time, site, desc, old_value, rule, trigger);
        id
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Snapshot the trace recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Trace {
        self.lock().clone()
    }

    /// Run `f` with read access to the trace without cloning it.
    pub fn with<R>(&self, f: impl FnOnce(&Trace) -> R) -> R {
        f(&self.lock())
    }

    /// Restore canonical order after a parallel run. See
    /// [`Trace::finalize_order`].
    pub fn finalize_order(&self) {
        self.lock().finalize_order();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Trace> {
        self.inner.lock().expect("trace lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Term;
    use crate::ItemPattern;

    fn x() -> ItemId {
        ItemId::plain("X")
    }

    fn write(trace: &mut Trace, t: u64, v: i64, old: Option<i64>) {
        trace.push(
            SimTime::from_secs(t),
            SiteId::new(0),
            EventDesc::Ws {
                item: x(),
                old: old.map(Value::Int),
                new: Value::Int(v),
            },
            old.map(Value::Int),
            None,
            None,
        );
    }

    #[test]
    fn value_at_follows_writes() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        write(&mut tr, 10, 1, Some(0));
        write(&mut tr, 20, 2, Some(1));
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(5)),
            Some(Value::Int(0))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(10)),
            Some(Value::Int(1))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(15)),
            Some(Value::Int(1))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(99)),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn underspecified_item_reads_none() {
        let tr = Trace::new();
        assert_eq!(tr.value_at(&x(), SimTime::ZERO), None);
    }

    #[test]
    fn timeline_and_values_taken() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        write(&mut tr, 10, 1, Some(0));
        write(&mut tr, 20, 1, Some(1)); // rewrite of same value kept
        write(&mut tr, 30, 2, Some(1));
        let tl = tr.timeline(&x());
        assert_eq!(tl.steps().len(), 4);
        assert_eq!(tl.at(SimTime::from_secs(25)), Some(&Value::Int(1)));
        assert_eq!(tl.at(SimTime::from_secs(5)), Some(&Value::Int(0)));
        assert_eq!(tl.at(SimTime::from_secs(30)), Some(&Value::Int(2)));
        assert_eq!(
            tl.values_taken(),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn matching_scans() {
        let mut tr = Trace::new();
        write(&mut tr, 1, 5, None);
        tr.push(
            SimTime::from_secs(2),
            SiteId::new(1),
            EventDesc::N {
                item: x(),
                value: Value::Int(5),
            },
            None,
            Some(RuleId(0)),
            Some(EventId(0)),
        );
        let tmpl = TemplateDesc::N {
            item: ItemPattern::plain("X"),
            value: Term::var("b"),
        };
        let hits: Vec<_> = tr.matching(&tmpl).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.get("b"), Some(&Value::Int(5)));
        // The false template visits (and matches) nothing.
        assert_eq!(tr.matching(&TemplateDesc::False).count(), 0);
    }

    #[test]
    fn salient_times_sorted_dedup() {
        let mut tr = Trace::new();
        write(&mut tr, 5, 1, None);
        write(&mut tr, 5, 2, Some(1));
        write(&mut tr, 9, 3, Some(2));
        assert_eq!(
            tr.salient_times(),
            vec![SimTime::ZERO, SimTime::from_secs(5), SimTime::from_secs(9)]
        );
    }

    #[test]
    fn same_instant_last_write_wins() {
        let mut tr = Trace::new();
        write(&mut tr, 5, 1, None);
        write(&mut tr, 5, 2, Some(1));
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(5)),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn out_of_order_trace_keeps_linear_semantics() {
        // An out-of-order trace (appendix property 1 violation) must
        // behave exactly like the original linear scan: the scan stops
        // at the first event later than `t`, so a later-pushed,
        // earlier-timed write is invisible once a later time has been
        // passed.
        let mut tr = Trace::new();
        write(&mut tr, 20, 2, None);
        write(&mut tr, 10, 1, None); // goes backwards
        assert!(!tr.is_time_ordered());
        // At t=15 the scan sees the t=20 event first and stops: None
        // from writes, initial unspecified.
        assert_eq!(tr.value_at(&x(), SimTime::from_secs(15)), None);
        // At t=30 the scan passes both: last write in push order wins.
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(30)),
            Some(Value::Int(1))
        );
        // salient_times still sorted + deduped.
        assert_eq!(
            tr.salient_times(),
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20)
            ]
        );
    }

    #[test]
    fn ordered_and_linear_value_at_agree() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        for (i, t) in [3u64, 5, 5, 8, 13].iter().enumerate() {
            write(&mut tr, *t, i as i64, None);
        }
        assert!(tr.is_time_ordered());
        for t in 0..15u64 {
            assert_eq!(
                tr.value_at(&x(), SimTime::from_secs(t)),
                tr.value_at_linear(&x(), SimTime::from_secs(t)),
                "divergence at t={t}"
            );
        }
    }

    #[test]
    fn recorder_round_trip() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.set_initial(x(), Value::Int(0));
        let id = rec.record(
            SimTime::from_secs(1),
            SiteId::new(0),
            EventDesc::Rr { item: x() },
            None,
            None,
            None,
        );
        assert_eq!(id, EventId(0));
        assert_eq!(rec.len(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.initial(&x()), Some(&Value::Int(0)));
        rec.with(|t| assert_eq!(t.len(), 1));
    }

    #[test]
    fn items_and_tag_counts() {
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("Y"), Value::Int(0));
        write(&mut tr, 1, 5, None);
        write(&mut tr, 2, 6, Some(5));
        let items: Vec<ItemId> = tr.items().cloned().collect();
        assert_eq!(items, vec![x(), ItemId::plain("Y")]);
        assert_eq!(tr.tag_counts().get("Ws"), Some(&2));
        assert_eq!(tr.end_time(), SimTime::from_secs(2));
    }
}
