//! Executions (traces) and their recording.
//!
//! Appendix A defines the semantics of the rule language over
//! *executions* — time-ordered sequences of events. [`Trace`] is a
//! recorded execution plus the query machinery the guarantee evaluator
//! and the validity checker need:
//!
//! * per-item **timelines** (step functions of value over time,
//!   reconstructing the appendix's full `old`/`new` interpretations);
//! * template scans;
//! * the quiescence horizon used for finite-trace evaluation of
//!   liveness-flavoured guarantees (see `hcm-checker`).
//!
//! [`TraceRecorder`] is the cheaply-clonable handle the simulation
//! components append through.

use crate::event::{Event, EventDesc, EventId};
use crate::item::ItemId;
use crate::rule::RuleId;
use crate::site::SiteId;
use crate::template::{Bindings, TemplateDesc};
use crate::time::SimTime;
use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A recorded execution: events in occurrence order, plus the initial
/// values of data items (the initial interpretation).
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<Event>,
    initial: HashMap<ItemId, Value>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the initial value of an item (before any event). Items
    /// never mentioned are *underspecified*: reads return `None` and the
    /// checker treats them as unconstrained, matching the appendix's
    /// null-mapping interpretations.
    pub fn set_initial(&mut self, item: ItemId, value: Value) {
        self.initial.insert(item, value);
    }

    /// Initial value of an item, if specified.
    #[must_use]
    pub fn initial(&self, item: &ItemId) -> Option<&Value> {
        self.initial.get(item)
    }

    /// Append an event, assigning its [`EventId`]. Events are expected
    /// in nondecreasing time order; the invariant is *not* enforced
    /// here — appendix property 1 is one of the things the validity
    /// checker verifies, and its tests need to seed violations.
    pub fn push(
        &mut self,
        time: SimTime,
        site: SiteId,
        desc: EventDesc,
        old_value: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        let id = EventId(self.events.len() as u64);
        self.events.push(Event {
            id,
            time,
            site,
            desc,
            old_value,
            rule,
            trigger,
        });
        id
    }

    /// All events in occurrence order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Event by id.
    #[must_use]
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.get(id.0 as usize)
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event, or `SimTime::ZERO` for an empty trace.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |e| e.time)
    }

    /// Events matching `template`, with the matching interpretation for
    /// each.
    pub fn matching<'a>(
        &'a self,
        template: &'a TemplateDesc,
    ) -> impl Iterator<Item = (&'a Event, Bindings)> + 'a {
        self.events.iter().filter_map(move |e| {
            let mut b = Bindings::new();
            template.match_desc(&e.desc, &mut b).then_some((e, b))
        })
    }

    /// The value of `item` at time `t` — i.e. the interpretation the
    /// appendix would assign at `t`, restricted to `item`. Writes take
    /// effect *at* their event time (the `new` interpretation holds from
    /// the instant of the event onward; when several events share an
    /// instant, the last one wins, consistent with the trace order).
    /// Returns `None` when the item is underspecified at `t`.
    #[must_use]
    pub fn value_at(&self, item: &ItemId, t: SimTime) -> Option<Value> {
        let mut current = self.initial.get(item).cloned();
        for e in &self.events {
            if e.time > t {
                break;
            }
            if let Some((i, v)) = e.desc.write_effect() {
                if i == item {
                    current = Some(v.clone());
                }
            }
        }
        current
    }

    /// The full timeline of `item`: `(time, value)` change points, one
    /// per write, preceded by the initial value at `SimTime::ZERO` when
    /// specified. Consecutive equal values are retained (a rewrite of
    /// the same value is still a write event).
    #[must_use]
    pub fn timeline(&self, item: &ItemId) -> Timeline {
        let mut steps = Vec::new();
        if let Some(v) = self.initial.get(item) {
            steps.push((SimTime::ZERO, v.clone()));
        }
        for e in &self.events {
            if let Some((i, v)) = e.desc.write_effect() {
                if i == item {
                    steps.push((e.time, v.clone()));
                }
            }
        }
        Timeline { steps }
    }

    /// Every item mentioned by any event or by the initial
    /// interpretation, deduplicated, in deterministic order.
    #[must_use]
    pub fn items(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self
            .initial
            .keys()
            .cloned()
            .chain(self.events.iter().filter_map(|e| e.desc.item().cloned()))
            .collect();
        items.sort();
        items.dedup();
        items
    }

    /// The *salient instants* of the trace: every event time. Item
    /// values are constant between consecutive salient instants, so
    /// quantification over continuous time reduces to these points plus
    /// one representative inside each open interval (`hcm-checker`
    /// builds on this).
    #[must_use]
    pub fn salient_times(&self) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self.events.iter().map(|e| e.time).collect();
        ts.push(SimTime::ZERO);
        ts.sort();
        ts.dedup();
        ts
    }

    /// Count events per descriptor tag — cheap instrumentation for the
    /// message-reduction experiments (E8/E9).
    #[must_use]
    pub fn tag_counts(&self) -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for e in &self.events {
            *m.entry(e.desc.tag()).or_insert(0) += 1;
        }
        m
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Step function of one item's value over time.
#[derive(Debug, Clone)]
pub struct Timeline {
    steps: Vec<(SimTime, Value)>,
}

impl Timeline {
    /// The change points `(time, value)` in time order.
    #[must_use]
    pub fn steps(&self) -> &[(SimTime, Value)] {
        &self.steps
    }

    /// Value at time `t` (last change point at or before `t`).
    #[must_use]
    pub fn at(&self, t: SimTime) -> Option<&Value> {
        self.steps
            .iter()
            .take_while(|(time, _)| *time <= t)
            .last()
            .map(|(_, v)| v)
    }

    /// Distinct values taken, in first-occurrence order.
    #[must_use]
    pub fn values_taken(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for (_, v) in &self.steps {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
        seen
    }
}

/// Shared, cheaply clonable handle to a trace under construction. The
/// simulation is single-threaded (deterministic), so `Rc<RefCell<…>>`
/// suffices; the recorded [`Trace`] is extracted once at the end.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Rc<RefCell<Trace>>,
}

impl TraceRecorder {
    /// A recorder over an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an initial item value. See [`Trace::set_initial`].
    pub fn set_initial(&self, item: ItemId, value: Value) {
        self.inner.borrow_mut().set_initial(item, value);
    }

    /// Append an event. See [`Trace::push`].
    pub fn record(
        &self,
        time: SimTime,
        site: SiteId,
        desc: EventDesc,
        old_value: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        self.inner
            .borrow_mut()
            .push(time, site, desc, old_value, rule, trigger)
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Snapshot the trace recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Trace {
        self.inner.borrow().clone()
    }

    /// Run `f` with read access to the trace without cloning it.
    pub fn with<R>(&self, f: impl FnOnce(&Trace) -> R) -> R {
        f(&self.inner.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Term;
    use crate::ItemPattern;

    fn x() -> ItemId {
        ItemId::plain("X")
    }

    fn write(trace: &mut Trace, t: u64, v: i64, old: Option<i64>) {
        trace.push(
            SimTime::from_secs(t),
            SiteId::new(0),
            EventDesc::Ws {
                item: x(),
                old: old.map(Value::Int),
                new: Value::Int(v),
            },
            old.map(Value::Int),
            None,
            None,
        );
    }

    #[test]
    fn value_at_follows_writes() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        write(&mut tr, 10, 1, Some(0));
        write(&mut tr, 20, 2, Some(1));
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(5)),
            Some(Value::Int(0))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(10)),
            Some(Value::Int(1))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(15)),
            Some(Value::Int(1))
        );
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(99)),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn underspecified_item_reads_none() {
        let tr = Trace::new();
        assert_eq!(tr.value_at(&x(), SimTime::ZERO), None);
    }

    #[test]
    fn timeline_and_values_taken() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        write(&mut tr, 10, 1, Some(0));
        write(&mut tr, 20, 1, Some(1)); // rewrite of same value kept
        write(&mut tr, 30, 2, Some(1));
        let tl = tr.timeline(&x());
        assert_eq!(tl.steps().len(), 4);
        assert_eq!(tl.at(SimTime::from_secs(25)), Some(&Value::Int(1)));
        assert_eq!(
            tl.values_taken(),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn matching_scans() {
        let mut tr = Trace::new();
        write(&mut tr, 1, 5, None);
        tr.push(
            SimTime::from_secs(2),
            SiteId::new(1),
            EventDesc::N {
                item: x(),
                value: Value::Int(5),
            },
            None,
            Some(RuleId(0)),
            Some(EventId(0)),
        );
        let tmpl = TemplateDesc::N {
            item: ItemPattern::plain("X"),
            value: Term::var("b"),
        };
        let hits: Vec<_> = tr.matching(&tmpl).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.get("b"), Some(&Value::Int(5)));
    }

    #[test]
    fn salient_times_sorted_dedup() {
        let mut tr = Trace::new();
        write(&mut tr, 5, 1, None);
        write(&mut tr, 5, 2, Some(1));
        write(&mut tr, 9, 3, Some(2));
        assert_eq!(
            tr.salient_times(),
            vec![SimTime::ZERO, SimTime::from_secs(5), SimTime::from_secs(9)]
        );
    }

    #[test]
    fn same_instant_last_write_wins() {
        let mut tr = Trace::new();
        write(&mut tr, 5, 1, None);
        write(&mut tr, 5, 2, Some(1));
        assert_eq!(
            tr.value_at(&x(), SimTime::from_secs(5)),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn recorder_round_trip() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.set_initial(x(), Value::Int(0));
        let id = rec.record(
            SimTime::from_secs(1),
            SiteId::new(0),
            EventDesc::Rr { item: x() },
            None,
            None,
            None,
        );
        assert_eq!(id, EventId(0));
        assert_eq!(rec.len(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.initial(&x()), Some(&Value::Int(0)));
        rec.with(|t| assert_eq!(t.len(), 1));
    }

    #[test]
    fn items_and_tag_counts() {
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("Y"), Value::Int(0));
        write(&mut tr, 1, 5, None);
        write(&mut tr, 2, 6, Some(5));
        let items = tr.items();
        assert_eq!(items, vec![x(), ItemId::plain("Y")]);
        assert_eq!(tr.tag_counts().get("Ws"), Some(&2));
        assert_eq!(tr.end_time(), SimTime::from_secs(2));
    }
}
