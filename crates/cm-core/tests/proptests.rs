//! Property-based tests for the core vocabulary: value ordering laws,
//! template-matching round trips, and trace/timeline agreement.

use hcm_core::{
    Bindings, EventDesc, ItemId, ItemPattern, SimTime, SiteId, TemplateDesc, Term, Trace, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::from),
    ]
}

proptest! {
    /// `Ord` on Value is a total order: antisymmetric and transitive.
    #[test]
    fn value_ord_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry via consistency with reversal.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Eq consistency: cmp == Equal implies ==.
        if a.cmp(&b) == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Hash agrees with equality (Int/Float cross-equality included).
    #[test]
    fn value_hash_eq_consistent(i in -1000i64..1000) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let int = Value::Int(i);
        let float = Value::Float(i as f64);
        prop_assert_eq!(&int, &float);
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        prop_assert_eq!(h(&int), h(&float));
    }

    /// Arithmetic: (a + b) - b == a for in-range integers.
    #[test]
    fn int_add_sub_roundtrip(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        let back = va.add(&vb).unwrap().sub(&vb).unwrap();
        prop_assert_eq!(back, va);
    }

    /// Instantiating a template under bindings and matching the result
    /// recovers consistent bindings (match ∘ instantiate = id on the
    /// used variables).
    #[test]
    fn template_instantiate_match_roundtrip(
        param in arb_value().prop_filter("param must be concrete", |v| v.exists()),
        value in arb_value(),
    ) {
        let tmpl = TemplateDesc::N {
            item: ItemPattern::with("x", [Term::var("n")]),
            value: Term::var("b"),
        };
        let mut bindings = Bindings::new();
        bindings.bind("n", param.clone());
        bindings.bind("b", value.clone());
        let event = tmpl.instantiate(&bindings).expect("fully bound");
        let mut recovered = Bindings::new();
        prop_assert!(tmpl.match_desc(&event, &mut recovered));
        prop_assert_eq!(recovered.get("n"), Some(&param));
        prop_assert_eq!(recovered.get("b"), Some(&value));
    }

    /// A template with a repeated variable only matches events whose
    /// positions agree.
    #[test]
    fn repeated_variable_consistency(a in arb_value(), b in arb_value()) {
        let tmpl = TemplateDesc::Custom {
            name: "pair".into(),
            args: vec![Term::var("v"), Term::var("v")],
        };
        let event = EventDesc::Custom { name: "pair".into(), args: vec![a.clone(), b.clone()] };
        let mut bind = Bindings::new();
        let matched = tmpl.match_desc(&event, &mut bind);
        prop_assert_eq!(matched, a == b);
        if !matched {
            prop_assert!(bind.is_empty(), "failed match must roll back");
        }
    }

    /// Trace::value_at agrees with Timeline::at at every queried time,
    /// for arbitrary write sequences.
    #[test]
    fn trace_and_timeline_agree(
        writes in prop::collection::vec((0u64..500, -50i64..50), 0..40),
        queries in prop::collection::vec(0u64..600, 0..20),
        initial in proptest::option::of(-50i64..50),
    ) {
        let mut writes = writes;
        writes.sort_by_key(|(t, _)| *t);
        let item = ItemId::plain("X");
        let mut trace = Trace::new();
        if let Some(v) = initial {
            trace.set_initial(item.clone(), Value::Int(v));
        }
        for (t, v) in &writes {
            let old = trace.value_at(&item, SimTime::from_millis(*t));
            trace.push(
                SimTime::from_millis(*t),
                SiteId::new(0),
                EventDesc::Ws { item: item.clone(), old: old.clone(), new: Value::Int(*v) },
                old,
                None,
                None,
            );
        }
        let tl = trace.timeline(&item);
        for q in queries {
            let t = SimTime::from_millis(q);
            prop_assert_eq!(trace.value_at(&item, t), tl.at(t).cloned());
        }
    }

    /// Bindings rollback restores exactly the checkpointed state.
    #[test]
    fn bindings_rollback_exact(
        names in prop::collection::vec("[a-e]", 1..8),
        cut in 0usize..8,
    ) {
        let mut b = Bindings::new();
        let mut inserted = Vec::new();
        let cut = cut.min(names.len());
        let mut checkpoint = b.checkpoint();
        for (i, n) in names.iter().enumerate() {
            if i == cut {
                checkpoint = b.checkpoint();
            }
            if b.get(n).is_none() {
                inserted.push((n.clone(), i));
            }
            b.bind(n.clone(), Value::Int(i as i64));
        }
        if cut == names.len() {
            checkpoint = b.checkpoint();
        }
        b.rollback(checkpoint);
        // Every name first inserted before the cut is still present;
        // every name first inserted at/after the cut is gone.
        for (n, first) in inserted {
            if first < cut {
                prop_assert!(b.get(&n).is_some());
            } else {
                prop_assert!(b.get(&n).is_none());
            }
        }
    }
}
