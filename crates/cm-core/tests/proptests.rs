//! Randomized tests for the core vocabulary: value ordering laws,
//! template-matching round trips, and trace/timeline agreement.
//!
//! Formerly proptest-based; now driven by a local SplitMix64 generator
//! so the suite needs no external crates and stays deterministic.

use hcm_core::{
    Bindings, EventDesc, ItemId, ItemPattern, SimTime, SiteId, TemplateDesc, Term, Trace, Value,
};

/// Minimal deterministic generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// Uniform integer in `[lo, hi]`.
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.int_in(lo as i64, hi as i64) as usize
    }
    /// Lower-case string of length `0..=max_len`.
    fn lc_string(&mut self, max_len: usize) -> String {
        let n = self.usize_in(0, max_len);
        (0..n)
            .map(|_| (b'a' + (self.next() % 26) as u8) as char)
            .collect()
    }
    fn value(&mut self) -> Value {
        match self.next() % 5 {
            0 => Value::Null,
            1 => Value::Bool(self.next().is_multiple_of(2)),
            2 => Value::Int(self.int_in(-1_000_000, 999_999)),
            3 => Value::Float(self.int_in(-1_000_000, 999_999) as f64 / 3.0),
            _ => Value::from(self.lc_string(8)),
        }
    }
}

/// `Ord` on Value is a total order: antisymmetric and transitive.
#[test]
fn value_ord_laws() {
    use std::cmp::Ordering;
    let mut g = Gen::new(0xC0DE_0001);
    for _ in 0..2000 {
        let a = g.value();
        let b = g.value();
        let c = g.value();
        // Antisymmetry via consistency with reversal.
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse(), "{a:?} vs {b:?}");
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(a.cmp(&c), Ordering::Greater, "{a:?} {b:?} {c:?}");
        }
        // Eq consistency: cmp == Equal implies ==.
        if a.cmp(&b) == Ordering::Equal {
            assert_eq!(&a, &b);
        }
    }
}

/// Hash agrees with equality (Int/Float cross-equality included).
#[test]
fn value_hash_eq_consistent() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let h = |v: &Value| {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    };
    for i in -1000i64..1000 {
        let int = Value::Int(i);
        let float = Value::Float(i as f64);
        assert_eq!(&int, &float);
        assert_eq!(h(&int), h(&float), "hash mismatch at {i}");
    }
}

/// Arithmetic: (a + b) - b == a for in-range integers.
#[test]
fn int_add_sub_roundtrip() {
    let mut g = Gen::new(0xC0DE_0002);
    for _ in 0..2000 {
        let a = g.int_in(-1_000_000, 999_999);
        let b = g.int_in(-1_000_000, 999_999);
        let va = Value::Int(a);
        let vb = Value::Int(b);
        let back = va.add(&vb).unwrap().sub(&vb).unwrap();
        assert_eq!(back, va, "({a} + {b}) - {b}");
    }
}

/// Instantiating a template under bindings and matching the result
/// recovers consistent bindings (match ∘ instantiate = id on the used
/// variables).
#[test]
fn template_instantiate_match_roundtrip() {
    let mut g = Gen::new(0xC0DE_0003);
    let mut cases = 0;
    while cases < 500 {
        let param = g.value();
        if !param.exists() {
            continue; // param must be concrete
        }
        cases += 1;
        let value = g.value();
        let tmpl = TemplateDesc::N {
            item: ItemPattern::with("x", [Term::var("n")]),
            value: Term::var("b"),
        };
        let mut bindings = Bindings::new();
        bindings.bind("n", param.clone());
        bindings.bind("b", value.clone());
        let event = tmpl.instantiate(&bindings).expect("fully bound");
        let mut recovered = Bindings::new();
        assert!(tmpl.match_desc(&event, &mut recovered));
        assert_eq!(recovered.get("n"), Some(&param));
        assert_eq!(recovered.get("b"), Some(&value));
    }
}

/// A template with a repeated variable only matches events whose
/// positions agree.
#[test]
fn repeated_variable_consistency() {
    let mut g = Gen::new(0xC0DE_0004);
    for _ in 0..1000 {
        let a = g.value();
        let b = g.value();
        let tmpl = TemplateDesc::Custom {
            name: "pair".into(),
            args: vec![Term::var("v"), Term::var("v")],
        };
        let event = EventDesc::Custom {
            name: "pair".into(),
            args: vec![a.clone(), b.clone()],
        };
        let mut bind = Bindings::new();
        let matched = tmpl.match_desc(&event, &mut bind);
        assert_eq!(matched, a == b, "{a:?} vs {b:?}");
        if !matched {
            assert!(bind.is_empty(), "failed match must roll back");
        }
    }
}

/// Trace::value_at agrees with Timeline::at at every queried time, for
/// arbitrary write sequences.
#[test]
fn trace_and_timeline_agree() {
    let mut g = Gen::new(0xC0DE_0005);
    for _ in 0..300 {
        let mut writes: Vec<(u64, i64)> = (0..g.usize_in(0, 39))
            .map(|_| (g.int_in(0, 499) as u64, g.int_in(-50, 49)))
            .collect();
        writes.sort_by_key(|(t, _)| *t);
        let queries: Vec<u64> = (0..g.usize_in(0, 19))
            .map(|_| g.int_in(0, 599) as u64)
            .collect();
        let initial = if g.next().is_multiple_of(2) {
            Some(g.int_in(-50, 49))
        } else {
            None
        };

        let item = ItemId::plain("X");
        let mut trace = Trace::new();
        if let Some(v) = initial {
            trace.set_initial(item.clone(), Value::Int(v));
        }
        for (t, v) in &writes {
            let old = trace.value_at(&item, SimTime::from_millis(*t));
            trace.push(
                SimTime::from_millis(*t),
                SiteId::new(0),
                EventDesc::Ws {
                    item: item.clone(),
                    old: old.clone(),
                    new: Value::Int(*v),
                },
                old,
                None,
                None,
            );
        }
        let tl = trace.timeline(&item);
        for q in queries {
            let t = SimTime::from_millis(q);
            assert_eq!(
                trace.value_at(&item, t),
                tl.at(t).cloned(),
                "query at {q}ms"
            );
        }
    }
}

/// Bindings rollback restores exactly the checkpointed state.
#[test]
fn bindings_rollback_exact() {
    let mut g = Gen::new(0xC0DE_0006);
    for _ in 0..1000 {
        let names: Vec<String> = (0..g.usize_in(1, 7))
            .map(|_| ((b'a' + (g.next() % 5) as u8) as char).to_string())
            .collect();
        let cut = g.usize_in(0, 7).min(names.len());

        let mut b = Bindings::new();
        let mut inserted = Vec::new();
        let mut checkpoint = b.checkpoint();
        for (i, n) in names.iter().enumerate() {
            if i == cut {
                checkpoint = b.checkpoint();
            }
            if b.get(n).is_none() {
                inserted.push((n.clone(), i));
            }
            b.bind(n.clone(), Value::Int(i as i64));
        }
        if cut == names.len() {
            checkpoint = b.checkpoint();
        }
        b.rollback(checkpoint);
        // Every name first inserted before the cut is still present;
        // every name first inserted at/after the cut is gone.
        for (n, first) in inserted {
            if first < cut {
                assert!(b.get(&n).is_some());
            } else {
                assert!(b.get(&n).is_none());
            }
        }
    }
}
